package netsim

import (
	"math/rand"
	"testing"
	"time"

	"tiger/internal/clock"
	"tiger/internal/msg"
	"tiger/internal/sim"
)

type recorder struct {
	from []msg.NodeID
	msgs []msg.Message
	at   []sim.Time
	eng  *sim.Engine
}

func (r *recorder) Deliver(from msg.NodeID, m msg.Message) {
	r.from = append(r.from, from)
	r.msgs = append(r.msgs, m)
	r.at = append(r.at, r.eng.Now())
}

func testNet(t *testing.T, mutate func(*Params)) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.New(1)
	p := DefaultParams()
	if mutate != nil {
		mutate(&p)
	}
	return eng, New(p, clock.Sim{Eng: eng}, rand.New(rand.NewSource(9)))
}

func TestDeliveryWithLatency(t *testing.T) {
	eng, n := testNet(t, func(p *Params) { p.LatencyJitter = 0 })
	r := &recorder{eng: eng}
	n.Register(0, r)
	n.Register(1, HandlerFunc(func(msg.NodeID, msg.Message) {}))
	n.Send(1, 0, &msg.Heartbeat{From: 1})
	eng.Run()
	if len(r.msgs) != 1 {
		t.Fatalf("%d deliveries", len(r.msgs))
	}
	if r.at[0] != sim.Time(n.Params().LatencyBase) {
		t.Fatalf("arrived at %v, want %v", r.at[0], n.Params().LatencyBase)
	}
	if r.from[0] != 1 {
		t.Fatalf("from %v", r.from[0])
	}
}

func TestPairwiseFIFO(t *testing.T) {
	// §4.1.3 relies on TCP ordering between cub pairs: messages sent
	// earlier arrive earlier, despite latency jitter.
	eng, n := testNet(t, func(p *Params) { p.LatencyJitter = 5 * time.Millisecond })
	r := &recorder{eng: eng}
	n.Register(0, r)
	n.Register(1, HandlerFunc(func(msg.NodeID, msg.Message) {}))
	for i := 0; i < 50; i++ {
		n.Send(1, 0, &msg.Heartbeat{From: 1, Epoch: int32(i)})
	}
	eng.Run()
	if len(r.msgs) != 50 {
		t.Fatalf("%d deliveries", len(r.msgs))
	}
	for i, m := range r.msgs {
		if m.(*msg.Heartbeat).Epoch != int32(i) {
			t.Fatalf("message %d out of order", i)
		}
	}
	for i := 1; i < len(r.at); i++ {
		if r.at[i] <= r.at[i-1] {
			t.Fatalf("arrival times not strictly increasing at %d", i)
		}
	}
}

func TestFailedNodeSendsAndReceivesNothing(t *testing.T) {
	eng, n := testNet(t, nil)
	r := &recorder{eng: eng}
	n.Register(0, r)
	n.Register(1, HandlerFunc(func(msg.NodeID, msg.Message) {}))
	n.Fail(1)
	n.Send(1, 0, &msg.Heartbeat{From: 1}) // from failed: dropped
	n.Revive(1)
	n.Fail(0)
	n.Send(1, 0, &msg.Heartbeat{From: 1}) // to failed: dropped
	eng.Run()
	if len(r.msgs) != 0 {
		t.Fatalf("failed-node traffic delivered: %d", len(r.msgs))
	}
}

func TestFailureWhileInFlight(t *testing.T) {
	eng, n := testNet(t, nil)
	r := &recorder{eng: eng}
	n.Register(0, r)
	n.Register(1, HandlerFunc(func(msg.NodeID, msg.Message) {}))
	n.Send(1, 0, &msg.Heartbeat{From: 1})
	n.Fail(0) // receiver dies with the message in flight
	eng.Run()
	if len(r.msgs) != 0 {
		t.Fatal("message delivered to a node that failed while it was in flight")
	}
}

func TestBlipKeepsInFlight(t *testing.T) {
	// Fail/Revive is a network blip: a message already in flight when the
	// receiver blips (and revives before arrival) is still delivered.
	eng, n := testNet(t, func(p *Params) { p.LatencyBase = time.Millisecond })
	r := &recorder{eng: eng}
	n.Register(0, r)
	n.Register(1, HandlerFunc(func(msg.NodeID, msg.Message) {}))
	n.Send(1, 0, &msg.Heartbeat{From: 1})
	n.Fail(0)
	eng.RunFor(100 * time.Microsecond)
	n.Revive(0)
	eng.Run()
	if len(r.msgs) != 1 {
		t.Fatalf("blip dropped an in-flight message: %d deliveries", len(r.msgs))
	}
}

func TestCrashDropsInFlight(t *testing.T) {
	// Crash/Revive is a machine restart: the old incarnation's in-flight
	// messages — in either direction — die with it and must not surface
	// after the node comes back.
	eng, n := testNet(t, func(p *Params) { p.LatencyBase = time.Millisecond })
	r0 := &recorder{eng: eng}
	r1 := &recorder{eng: eng}
	n.Register(0, r0)
	n.Register(1, r1)
	n.Send(1, 0, &msg.Heartbeat{From: 1}) // receiver crashes mid-flight
	n.Crash(0)
	eng.RunFor(100 * time.Microsecond)
	n.Revive(0)
	n.Send(0, 1, &msg.Heartbeat{From: 0}) // sender crashes mid-flight
	n.Crash(0)
	eng.RunFor(100 * time.Microsecond)
	n.Revive(0)
	eng.Run()
	if len(r0.msgs) != 0 || len(r1.msgs) != 0 {
		t.Fatalf("crashed-incarnation traffic delivered: %d to, %d from",
			len(r0.msgs), len(r1.msgs))
	}
	// Post-restart traffic flows normally.
	n.Send(1, 0, &msg.Heartbeat{From: 1})
	eng.Run()
	if len(r0.msgs) != 1 {
		t.Fatalf("post-restart message not delivered: %d", len(r0.msgs))
	}
}

func TestControlByteAccounting(t *testing.T) {
	eng, n := testNet(t, nil)
	n.Register(0, HandlerFunc(func(msg.NodeID, msg.Message) {}))
	n.Register(1, HandlerFunc(func(msg.NodeID, msg.Message) {}))
	hb := &msg.Heartbeat{From: 0}
	for i := 0; i < 10; i++ {
		n.Send(0, 1, hb)
	}
	eng.Run()
	st := n.NodeStats(0)
	if st.CtlMsgs != 10 || st.CtlBytes != int64(10*hb.Size()) {
		t.Fatalf("stats %+v", st)
	}
}

func TestDropControlHook(t *testing.T) {
	eng, n := testNet(t, nil)
	r := &recorder{eng: eng}
	n.Register(0, r)
	n.Register(1, HandlerFunc(func(msg.NodeID, msg.Message) {}))
	drop := true
	n.DropControl = func(from, to msg.NodeID, m msg.Message) bool { return drop }
	n.Send(1, 0, &msg.Heartbeat{})
	drop = false
	n.Send(1, 0, &msg.Heartbeat{})
	eng.Run()
	if len(r.msgs) != 1 {
		t.Fatalf("%d deliveries, want 1", len(r.msgs))
	}
}

type sink struct {
	got []BlockDelivery
}

func (s *sink) DeliverBlock(d BlockDelivery) { s.got = append(s.got, d) }

func TestBlockDelivery(t *testing.T) {
	eng, n := testNet(t, func(p *Params) { p.LatencyJitter = 0 })
	s := &sink{}
	n.Register(0, HandlerFunc(func(msg.NodeID, msg.Message) {}))
	n.RegisterViewer(7, s)
	n.SendBlock(0, BlockDelivery{Viewer: 7, Bytes: 262144, Parts: 1}, time.Second)
	eng.Run()
	if len(s.got) != 1 {
		t.Fatalf("%d deliveries", len(s.got))
	}
	d := s.got[0]
	if d.From != 0 || d.Start != 0 {
		t.Fatalf("delivery %+v", d)
	}
	if want := sim.Time(time.Second + n.Params().LatencyBase); d.LastByte != want {
		t.Fatalf("last byte at %v, want %v", d.LastByte, want)
	}
	if st := n.NodeStats(0); st.DataBytes != 262144 {
		t.Fatalf("data bytes %d", st.DataBytes)
	}
}

func TestUnregisteredViewerDiscarded(t *testing.T) {
	eng, n := testNet(t, nil)
	n.Register(0, HandlerFunc(func(msg.NodeID, msg.Message) {}))
	s := &sink{}
	n.RegisterViewer(7, s)
	n.UnregisterViewer(7)
	n.SendBlock(0, BlockDelivery{Viewer: 7, Bytes: 1, Parts: 1}, time.Second)
	eng.Run()
	if len(s.got) != 0 {
		t.Fatal("delivery to unregistered viewer")
	}
}

func TestNICOccupancyAccounting(t *testing.T) {
	eng, n := testNet(t, nil)
	n.Register(0, HandlerFunc(func(msg.NodeID, msg.Message) {}))
	// Two concurrent 1 MB/s sends for 1 s each.
	n.SendBlock(0, BlockDelivery{Viewer: 1, Bytes: 1_000_000, Parts: 1}, time.Second)
	n.SendBlock(0, BlockDelivery{Viewer: 2, Bytes: 1_000_000, Parts: 1}, time.Second)
	eng.Run()
	st := n.NodeStats(0)
	if st.PeakRate < 1.99e6 || st.PeakRate > 2.01e6 {
		t.Fatalf("peak rate %v", st.PeakRate)
	}
	// Integral: 2 MB of byte-seconds.
	if st.ByteSecs < 1.99e6 || st.ByteSecs > 2.01e6 {
		t.Fatalf("byte-seconds %v", st.ByteSecs)
	}
	if st.OverloadNs != 0 {
		t.Fatal("overload recorded below NIC capacity")
	}
}

func TestNICOverloadDetected(t *testing.T) {
	eng, n := testNet(t, func(p *Params) { p.NICRate = 1e6 })
	n.Register(0, HandlerFunc(func(msg.NodeID, msg.Message) {}))
	n.SendBlock(0, BlockDelivery{Viewer: 1, Bytes: 2_000_000, Parts: 1}, time.Second)
	eng.Run()
	if st := n.NodeStats(0); st.OverloadNs == 0 {
		t.Fatal("2 MB/s on a 1 MB/s NIC not flagged")
	}
}

func TestLinkCutAndHeal(t *testing.T) {
	eng, n := testNet(t, nil)
	r := &recorder{eng: eng}
	n.Register(0, r)
	n.Register(1, HandlerFunc(func(msg.NodeID, msg.Message) {}))
	n.Cut(0, 1)
	if !n.LinkCut(1, 0) || !n.LinkCut(0, 1) {
		t.Fatal("Cut is not symmetric")
	}
	n.Send(1, 0, &msg.Heartbeat{From: 1})
	eng.Run()
	if len(r.msgs) != 0 {
		t.Fatalf("cut link delivered %d messages", len(r.msgs))
	}
	if fs := n.FaultStats(); fs.LinkDrops != 1 {
		t.Fatalf("link drops %d, want 1", fs.LinkDrops)
	}
	if n.FaultedLinks() != 2 {
		t.Fatalf("faulted links %d, want 2", n.FaultedLinks())
	}
	n.Heal(0, 1)
	if n.FaultedLinks() != 0 {
		t.Fatalf("faulted links after heal: %d", n.FaultedLinks())
	}
	n.Send(1, 0, &msg.Heartbeat{From: 1})
	eng.Run()
	if len(r.msgs) != 1 {
		t.Fatalf("healed link delivered %d messages, want 1", len(r.msgs))
	}
}

func TestAsymmetricCut(t *testing.T) {
	// 0→1 cut, 1→0 intact: exactly the "B cannot hear A" half-failure the
	// deadman protocol can misread as a death.
	eng, n := testNet(t, nil)
	r0 := &recorder{eng: eng}
	r1 := &recorder{eng: eng}
	n.Register(0, r0)
	n.Register(1, r1)
	n.CutOneWay(0, 1)
	n.Send(0, 1, &msg.Heartbeat{From: 0})
	n.Send(1, 0, &msg.Heartbeat{From: 1})
	eng.Run()
	if len(r1.msgs) != 0 {
		t.Fatal("cut direction delivered")
	}
	if len(r0.msgs) != 1 {
		t.Fatal("intact direction lost the message")
	}
}

func TestFlakyDropAndDup(t *testing.T) {
	eng, n := testNet(t, nil)
	r := &recorder{eng: eng}
	n.Register(0, r)
	n.Register(1, HandlerFunc(func(msg.NodeID, msg.Message) {}))

	n.SetFlakyOneWay(1, 0, FlakyParams{DropProb: 1})
	n.Send(1, 0, &msg.Heartbeat{From: 1})
	eng.Run()
	if len(r.msgs) != 0 {
		t.Fatal("DropProb=1 delivered")
	}

	n.SetFlakyOneWay(1, 0, FlakyParams{DupProb: 1})
	n.Send(1, 0, &msg.Heartbeat{From: 1, Epoch: 7})
	eng.Run()
	if len(r.msgs) != 2 {
		t.Fatalf("DupProb=1 delivered %d copies, want 2", len(r.msgs))
	}
	if r.at[1] <= r.at[0] {
		t.Fatal("duplicate did not trail the original")
	}
	fs := n.FaultStats()
	if fs.LinkDrops != 1 || fs.LinkDups != 1 {
		t.Fatalf("fault stats %+v", fs)
	}

	// Zero params heal the flakiness.
	n.SetFlakyOneWay(1, 0, FlakyParams{})
	if n.FaultedLinks() != 0 {
		t.Fatalf("faulted links after zero params: %d", n.FaultedLinks())
	}
}

func TestFlakyExtraDelayPreservesFIFO(t *testing.T) {
	eng, n := testNet(t, func(p *Params) { p.LatencyJitter = 0 })
	r := &recorder{eng: eng}
	n.Register(0, r)
	n.Register(1, HandlerFunc(func(msg.NodeID, msg.Message) {}))
	n.SetFlakyOneWay(1, 0, FlakyParams{ExtraDelay: 20 * time.Millisecond})
	for i := 0; i < 40; i++ {
		n.Send(1, 0, &msg.Heartbeat{From: 1, Epoch: int32(i)})
	}
	eng.Run()
	if len(r.msgs) != 40 {
		t.Fatalf("%d deliveries", len(r.msgs))
	}
	for i, m := range r.msgs {
		if m.(*msg.Heartbeat).Epoch != int32(i) {
			t.Fatalf("message %d out of order under extra delay", i)
		}
	}
	// At least one message must actually have been delayed beyond the
	// base latency.
	if r.at[0] == sim.Time(n.Params().LatencyBase) && r.at[39] <= r.at[0]+39 {
		t.Fatal("extra delay never applied")
	}
}

func TestDropDataHook(t *testing.T) {
	eng, n := testNet(t, nil)
	s := &sink{}
	n.Register(0, HandlerFunc(func(msg.NodeID, msg.Message) {}))
	n.RegisterViewer(7, s)
	drop := true
	n.DropData = func(from msg.NodeID, d BlockDelivery) bool { return drop }
	n.SendBlock(0, BlockDelivery{Viewer: 7, Bytes: 1000, Parts: 1}, time.Second)
	drop = false
	n.SendBlock(0, BlockDelivery{Viewer: 7, Bytes: 1000, Parts: 1}, time.Second)
	eng.Run()
	if len(s.got) != 1 {
		t.Fatalf("%d deliveries, want 1", len(s.got))
	}
	if fs := n.FaultStats(); fs.DataDrops != 1 {
		t.Fatalf("data drops %d, want 1", fs.DataDrops)
	}
	// Dropped blocks must not pollute the NIC or byte accounting: only
	// the delivered block counts.
	if st := n.NodeStats(0); st.DataBytes != 1000 {
		t.Fatalf("data bytes %d, want 1000", st.DataBytes)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	_, n := testNet(t, nil)
	n.Register(0, HandlerFunc(func(msg.NodeID, msg.Message) {}))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration accepted")
		}
	}()
	n.Register(0, HandlerFunc(func(msg.NodeID, msg.Message) {}))
}
