package layout

import (
	"fmt"

	"tiger/internal/msg"
)

// ElasticMove is one block (or mirror piece) that must change homes when
// the cub count changes. Unlike Move, endpoints are named by physical
// identity — (cub, cub-local disk index) — because raw disk numbers are
// renumbered when the cub count changes: disk 5 of a 14-cub array and
// disk 5 of a 16-cub array are different spindles. A block whose number
// changes but whose spindle does not must not be copied.
type ElasticMove struct {
	File    msg.FileID
	Block   int32
	Part    int8 // -1 for the primary copy, else mirror piece index
	FromCub msg.NodeID
	FromIdx int8
	ToCub   msg.NodeID
	ToIdx   int8
	Bytes   int64
}

// ElasticPlan is the physical copy set for an elastic reconfiguration.
type ElasticPlan struct {
	Old, New   Config
	Moves      []ElasticMove
	BytesTotal int64
}

func physical(c Config, disk int) (msg.NodeID, int8) {
	return c.CubOfDisk(disk), int8(disk / c.Cubs)
}

// PlanElastic computes the physical moves needed to convert files laid
// out under old into the layout under new, where old and new may have
// different cub counts. The plan is deterministic: moves are emitted in
// file order, block-ascending, primary before mirror pieces.
func PlanElastic(old, new Config, files []File) (*ElasticPlan, error) {
	if err := old.Validate(); err != nil {
		return nil, fmt.Errorf("old config: %w", err)
	}
	if err := new.Validate(); err != nil {
		return nil, fmt.Errorf("new config: %w", err)
	}
	if old.DisksPerCub != new.DisksPerCub {
		return nil, fmt.Errorf("layout: elastic restripe cannot change disks per cub (%d -> %d)",
			old.DisksPerCub, new.DisksPerCub)
	}
	p := &ElasticPlan{Old: old, New: new}
	for _, f := range files {
		nf := f
		nf.StartDisk = f.StartDisk % new.NumDisks()
		for b := 0; b < f.Blocks; b++ {
			fromCub, fromIdx := physical(old, old.PrimaryDisk(f, b))
			toCub, toIdx := physical(new, new.PrimaryDisk(nf, b))
			if fromCub != toCub || fromIdx != toIdx {
				p.add(ElasticMove{File: f.ID, Block: int32(b), Part: -1,
					FromCub: fromCub, FromIdx: fromIdx, ToCub: toCub, ToIdx: toIdx,
					Bytes: f.BlockSize})
			}
			for part := 0; part < new.Decluster; part++ {
				toCub, toIdx := physical(new, new.SecondaryDisk(nf, b, part))
				var fromCub msg.NodeID
				var fromIdx int8
				if part < old.Decluster {
					fromCub, fromIdx = physical(old, old.SecondaryDisk(f, b, part))
				} else {
					fromCub, fromIdx = physical(old, old.PrimaryDisk(f, b))
				}
				if fromCub != toCub || fromIdx != toIdx || old.Decluster != new.Decluster {
					p.add(ElasticMove{File: f.ID, Block: int32(b), Part: int8(part),
						FromCub: fromCub, FromIdx: fromIdx, ToCub: toCub, ToIdx: toIdx,
						Bytes: new.MirrorPartSize(nf)})
				}
			}
		}
	}
	return p, nil
}

func (p *ElasticPlan) add(m ElasticMove) {
	p.Moves = append(p.Moves, m)
	p.BytesTotal += m.Bytes
}
