package layout

import (
	"testing"
	"time"

	"tiger/internal/msg"
)

func TestRestripeIdentityIsEmpty(t *testing.T) {
	c := cfg(4, 2, 2)
	files := []File{{ID: 1, StartDisk: 3, Blocks: 100, BlockSize: 64}}
	p, err := PlanRestripe(c, c, files)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Moves) != 0 {
		t.Fatalf("identity restripe moved %d blocks", len(p.Moves))
	}
}

func TestRestripeAddCub(t *testing.T) {
	old := cfg(4, 2, 2)
	new := cfg(5, 2, 2)
	files := []File{{ID: 1, StartDisk: 0, Blocks: 400, BlockSize: 64}}
	p, err := PlanRestripe(old, new, files)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Moves) == 0 {
		t.Fatal("adding a cub moved nothing")
	}
	// Every move's destination must match the new layout.
	nf := files[0]
	nf.StartDisk = files[0].StartDisk % new.NumDisks()
	for _, m := range p.Moves {
		if m.Part == -1 {
			if want := new.PrimaryDisk(nf, m.Block); m.To != want {
				t.Fatalf("block %d moved to %d, want %d", m.Block, m.To, want)
			}
		} else {
			if want := new.SecondaryDisk(nf, m.Block, m.Part); m.To != want {
				t.Fatalf("block %d part %d moved to %d, want %d", m.Block, m.Part, m.To, want)
			}
		}
	}
}

// TestRestripeTimeIndependentOfSystemSize demonstrates §2.2's claim: the
// time to restripe depends on per-disk volume, not system size. Doubling
// the system (with proportionally more content) leaves the per-disk move
// volume — and hence the estimated duration — within a small factor.
func TestRestripeTimeIndependentOfSystemSize(t *testing.T) {
	perDiskBlocks := 200
	duration := func(cubs int) time.Duration {
		old := cfg(cubs, 2, 2)
		new := cfg(cubs+1, 2, 2)
		nfiles := cubs // content scales with system size
		files := make([]File, nfiles)
		for i := range files {
			files[i] = File{
				ID:        msg.FileID(i),
				StartDisk: (i * 3) % old.NumDisks(),
				Blocks:    perDiskBlocks * old.NumDisks() / nfiles,
				BlockSize: 262144,
			}
		}
		p, err := PlanRestripe(old, new, files)
		if err != nil {
			t.Fatal(err)
		}
		return p.EstimateDuration(5e6)
	}
	small := duration(4)
	large := duration(16)
	if small <= 0 || large <= 0 {
		t.Fatalf("durations: %v vs %v", small, large)
	}
	ratio := float64(large) / float64(small)
	if ratio > 2.0 {
		t.Fatalf("restripe time grew %.1fx when system grew 4x (%v -> %v)", ratio, small, large)
	}
}

func TestRestripeByteAccounting(t *testing.T) {
	old := cfg(3, 1, 1)
	new := cfg(4, 1, 1)
	files := []File{{ID: 9, StartDisk: 1, Blocks: 60, BlockSize: 100}}
	p, err := PlanRestripe(old, new, files)
	if err != nil {
		t.Fatal(err)
	}
	var out, in int64
	for _, b := range p.BytesOut {
		out += b
	}
	for _, b := range p.BytesIn {
		in += b
	}
	if out != in || out != p.TotalBytes() {
		t.Fatalf("bytes out %d != in %d != total %d", out, in, p.TotalBytes())
	}
}

func TestRestripeRejectsBadConfigs(t *testing.T) {
	good := cfg(3, 1, 1)
	bad := cfg(0, 1, 1)
	if _, err := PlanRestripe(bad, good, nil); err == nil {
		t.Error("bad old config accepted")
	}
	if _, err := PlanRestripe(good, bad, nil); err == nil {
		t.Error("bad new config accepted")
	}
}

func TestEstimateDurationZeroRate(t *testing.T) {
	p := &RestripePlan{}
	if p.EstimateDuration(0) != 0 {
		t.Error("zero rate should estimate 0")
	}
}
