package layout

import (
	"fmt"
	"testing"

	"tiger/internal/msg"
)

func elasticFiles(n, blocks, numDisks int) []File {
	files := make([]File, n)
	for i := range files {
		files[i] = File{ID: msg.FileID(i), StartDisk: (i * 7) % numDisks,
			Blocks: blocks, Bitrate: 6 << 20, BlockSize: 262144}
	}
	return files
}

// Shrinking below the declustering width must surface as an error from
// the planners, never a panic: decluster 4 needs at least 5 disks.
func TestPlanShrinkBelowDeclusterErrors(t *testing.T) {
	old := Config{Cubs: 6, DisksPerCub: 1, Decluster: 4}
	bad := Config{Cubs: 4, DisksPerCub: 1, Decluster: 4}
	files := elasticFiles(2, 10, old.NumDisks())
	if _, err := PlanElastic(old, bad, files); err == nil {
		t.Fatalf("PlanElastic accepted a %d-disk config with decluster %d",
			bad.NumDisks(), bad.Decluster)
	}
	if _, err := PlanRestripe(old, bad, files); err == nil {
		t.Fatalf("PlanRestripe accepted a %d-disk config with decluster %d",
			bad.NumDisks(), bad.Decluster)
	}
}

// A no-op reconfiguration (same config) must plan zero moves: every
// block's physical home is unchanged.
func TestPlanElasticNoop(t *testing.T) {
	cfg := Config{Cubs: 14, DisksPerCub: 4, Decluster: 4}
	files := elasticFiles(8, 100, cfg.NumDisks())
	p, err := PlanElastic(cfg, cfg, files)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Moves) != 0 || p.BytesTotal != 0 {
		t.Fatalf("no-op plan has %d moves, %d bytes", len(p.Moves), p.BytesTotal)
	}
}

// The plan must be byte-for-byte deterministic across runs: the live
// restripe coordinator numbers moves by slice index, and the chaos
// experiments replay fixed seeds against those numbers.
func TestPlanElasticDeterministic(t *testing.T) {
	old := Config{Cubs: 14, DisksPerCub: 4, Decluster: 4}
	grow := Config{Cubs: 16, DisksPerCub: 4, Decluster: 4}
	files := elasticFiles(12, 100, old.NumDisks())
	render := func() string {
		p, err := PlanElastic(old, grow, files)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v|%d", p.Moves, p.BytesTotal)
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("PlanElastic not deterministic across runs")
	}
}

// Moves must never target a cub outside the new config or source one
// outside the old, and a grow must route some blocks to the new cubs.
func TestPlanElasticGrowTargets(t *testing.T) {
	old := Config{Cubs: 14, DisksPerCub: 4, Decluster: 4}
	grow := Config{Cubs: 16, DisksPerCub: 4, Decluster: 4}
	files := elasticFiles(12, 100, old.NumDisks())
	p, err := PlanElastic(old, grow, files)
	if err != nil {
		t.Fatal(err)
	}
	toNew := 0
	for _, m := range p.Moves {
		if int(m.FromCub) >= old.Cubs || int(m.ToCub) >= grow.Cubs {
			t.Fatalf("move %+v escapes the configs", m)
		}
		if int(m.FromIdx) >= old.DisksPerCub || int(m.ToIdx) >= grow.DisksPerCub {
			t.Fatalf("move %+v names a bad disk index", m)
		}
		if int(m.ToCub) >= old.Cubs {
			toNew++
		}
	}
	if len(p.Moves) == 0 || toNew == 0 {
		t.Fatalf("grow plan: %d moves, %d to new cubs", len(p.Moves), toNew)
	}
}

// A shrink plan must evacuate the retiring cubs completely: after the
// plan, no block or piece may still be homed on a cub >= new.Cubs.
func TestPlanElasticShrinkEvacuates(t *testing.T) {
	old := Config{Cubs: 14, DisksPerCub: 4, Decluster: 4}
	shrink := Config{Cubs: 12, DisksPerCub: 4, Decluster: 4}
	files := elasticFiles(12, 100, old.NumDisks())
	p, err := PlanElastic(old, shrink, files)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range p.Moves {
		if int(m.ToCub) >= shrink.Cubs {
			t.Fatalf("shrink move %+v targets a retiring cub", m)
		}
	}
	// Exhaustively check evacuation: every (file, block, part) homed on a
	// retiring cub under old must appear as a move source or, when the
	// new layout re-homes it, as the matching destination elsewhere.
	moved := make(map[string]bool, len(p.Moves))
	for _, m := range p.Moves {
		moved[fmt.Sprintf("%d/%d/%d", m.File, m.Block, m.Part)] = true
	}
	for _, f := range files {
		nf := f
		nf.StartDisk = f.StartDisk % shrink.NumDisks()
		for b := 0; b < f.Blocks; b++ {
			if cub, _ := physical(old, old.PrimaryDisk(f, b)); int(cub) >= shrink.Cubs {
				if !moved[fmt.Sprintf("%d/%d/-1", f.ID, b)] {
					t.Fatalf("file %d block %d stranded on retiring cub %d", f.ID, b, cub)
				}
			}
			for part := 0; part < old.Decluster; part++ {
				if cub, _ := physical(old, old.SecondaryDisk(f, b, part)); int(cub) >= shrink.Cubs {
					if !moved[fmt.Sprintf("%d/%d/%d", f.ID, b, part)] {
						t.Fatalf("file %d block %d part %d stranded on retiring cub %d", f.ID, b, part, cub)
					}
				}
			}
		}
	}
}
