package layout

import (
	"fmt"
	"time"
)

// Move describes one block (or mirror piece) that must change disks when
// the system is reconfigured.
type Move struct {
	File     File
	Block    int
	Part     int // -1 for the primary copy, else the mirror piece index
	From, To int // disk numbers in old and new configurations
	Bytes    int64
}

// RestripePlan is the result of planning a configuration change (§2.2:
// "changing the system configuration by adding or removing cubs and/or
// disks requires changing the layout of all of the files").
type RestripePlan struct {
	Old, New Config
	Moves    []Move
	// BytesOut[d] / BytesIn[d] are total bytes leaving / entering each
	// disk, indexed by old / new disk number respectively.
	BytesOut []int64
	BytesIn  []int64
}

// PlanRestripe computes the moves needed to convert files laid out under
// old into the layout under new. Start disks are remapped modulo the new
// disk count so files remain evenly spread.
func PlanRestripe(old, new Config, files []File) (*RestripePlan, error) {
	if err := old.Validate(); err != nil {
		return nil, fmt.Errorf("old config: %w", err)
	}
	if err := new.Validate(); err != nil {
		return nil, fmt.Errorf("new config: %w", err)
	}
	p := &RestripePlan{
		Old:      old,
		New:      new,
		BytesOut: make([]int64, old.NumDisks()),
		BytesIn:  make([]int64, new.NumDisks()),
	}
	for _, f := range files {
		nf := f
		nf.StartDisk = f.StartDisk % new.NumDisks()
		for b := 0; b < f.Blocks; b++ {
			from := old.PrimaryDisk(f, b)
			to := new.PrimaryDisk(nf, b)
			if from != to {
				p.add(Move{File: f, Block: b, Part: -1, From: from, To: to, Bytes: f.BlockSize})
			}
			// Mirror pieces: compare piece placement under each config.
			// Decluster factors may differ, in which case every piece moves.
			for part := 0; part < new.Decluster; part++ {
				to := new.SecondaryDisk(nf, b, part)
				var from int
				if part < old.Decluster {
					from = old.SecondaryDisk(f, b, part)
				} else {
					from = old.PrimaryDisk(f, b) // sourced from the primary copy
				}
				if from != to || old.Decluster != new.Decluster {
					p.add(Move{File: f, Block: b, Part: part, From: from, To: to,
						Bytes: new.MirrorPartSize(nf)})
				}
			}
		}
	}
	return p, nil
}

func (p *RestripePlan) add(m Move) {
	p.Moves = append(p.Moves, m)
	p.BytesOut[m.From] += m.Bytes
	p.BytesIn[m.To] += m.Bytes
}

// EstimateDuration returns the restripe time assuming every disk streams
// at diskRate bytes/s and all transfers proceed in parallel through the
// switched network. The answer is governed by the most-loaded single
// disk — not by system size — which is the paper's point: the switched
// network between the cubs means restripe time depends only on the size
// and speed of the cubs and their disks.
func (p *RestripePlan) EstimateDuration(diskRate float64) time.Duration {
	if diskRate <= 0 {
		return 0
	}
	var worst int64
	for d, out := range p.BytesOut {
		total := out
		if d < len(p.BytesIn) {
			total += p.BytesIn[d]
		}
		if total > worst {
			worst = total
		}
	}
	for d, in := range p.BytesIn {
		if d < len(p.BytesOut) {
			continue // already counted
		}
		if in > worst {
			worst = in
		}
	}
	return time.Duration(float64(worst) / diskRate * float64(time.Second))
}

// TotalBytes returns the total volume moved.
func (p *RestripePlan) TotalBytes() int64 {
	var n int64
	for _, m := range p.Moves {
		n += m.Bytes
	}
	return n
}
