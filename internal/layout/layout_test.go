package layout

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tiger/internal/msg"
)

func cfg(cubs, dpc, dc int) Config {
	return Config{Cubs: cubs, DisksPerCub: dpc, Decluster: dc}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		c  Config
		ok bool
	}{
		{cfg(14, 4, 4), true},
		{cfg(1, 2, 1), true},
		{cfg(0, 1, 1), false},
		{cfg(1, 0, 1), false},
		{cfg(2, 1, 0), false},
		{cfg(2, 1, 2), false}, // decluster must be < numDisks
		{cfg(2, 2, 3), true},
	}
	for _, tc := range cases {
		err := tc.c.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%+v: err=%v, want ok=%v", tc.c, err, tc.ok)
		}
	}
}

func TestCubMinorNumbering(t *testing.T) {
	// §2.2: disk 0 on cub 0, disk 1 on cub 1, disk n on cub 0...
	c := cfg(14, 4, 4)
	if c.NumDisks() != 56 {
		t.Fatalf("NumDisks=%d", c.NumDisks())
	}
	if c.CubOfDisk(0) != 0 || c.CubOfDisk(1) != 1 || c.CubOfDisk(14) != 0 || c.CubOfDisk(15) != 1 {
		t.Fatal("cub-minor order broken")
	}
	// Consecutive disks are always on consecutive cubs.
	for d := 0; d < c.NumDisks(); d++ {
		got := c.CubOfDisk(c.NextDisk(d))
		want := c.Successor(c.CubOfDisk(d))
		if got != want {
			t.Fatalf("disk %d: next disk on %v, successor is %v", d, got, want)
		}
	}
}

func TestDisksOfCub(t *testing.T) {
	c := cfg(3, 2, 2)
	all := map[int]bool{}
	for cub := 0; cub < c.Cubs; cub++ {
		disks := c.DisksOfCub(msg.NodeID(cub))
		if len(disks) != c.DisksPerCub {
			t.Fatalf("cub %d has %d disks", cub, len(disks))
		}
		for _, d := range disks {
			if c.CubOfDisk(d) != msg.NodeID(cub) {
				t.Fatalf("disk %d not on cub %d", d, cub)
			}
			if all[d] {
				t.Fatalf("disk %d assigned twice", d)
			}
			all[d] = true
		}
	}
	if len(all) != c.NumDisks() {
		t.Fatalf("covered %d of %d disks", len(all), c.NumDisks())
	}
}

func TestSuccessorPredecessor(t *testing.T) {
	c := cfg(5, 1, 2)
	for i := 0; i < 5; i++ {
		n := msg.NodeID(i)
		if c.Predecessor(c.Successor(n)) != n {
			t.Fatalf("pred(succ(%v)) != %v", n, n)
		}
	}
	if c.Successor(4) != 0 || c.Predecessor(0) != 4 {
		t.Fatal("ring does not wrap")
	}
}

func TestStriping(t *testing.T) {
	c := cfg(4, 2, 2)
	f := File{ID: 1, StartDisk: 5, Blocks: 20, BlockSize: 1000}
	if c.PrimaryDisk(f, 0) != 5 {
		t.Fatal("block 0 not on start disk")
	}
	// Blocks advance one disk at a time, wrapping (§2.2).
	for b := 1; b < f.Blocks; b++ {
		if c.PrimaryDisk(f, b) != c.NextDisk(c.PrimaryDisk(f, b-1)) {
			t.Fatalf("block %d breaks round-robin", b)
		}
	}
}

func TestMirrorPlacement(t *testing.T) {
	// §2.3: "Tiger always stores the secondary parts of a block on the
	// disks immediately following the disk holding the primary copy."
	c := cfg(7, 2, 3)
	f := File{ID: 2, StartDisk: 0, Blocks: 30, BlockSize: 999}
	for b := 0; b < f.Blocks; b++ {
		p := c.PrimaryDisk(f, b)
		for part := 0; part < c.Decluster; part++ {
			s := c.SecondaryDisk(f, b, part)
			if s != (p+1+part)%c.NumDisks() {
				t.Fatalf("block %d part %d on disk %d, primary %d", b, part, s, p)
			}
			if s == p {
				t.Fatalf("mirror part on the primary's own disk")
			}
			// A disk failure must never take a block's primary and one
			// of its pieces together; a cub failure must not either.
			if c.CubOfDisk(s) == c.CubOfDisk(p) && c.Decluster < c.Cubs {
				t.Fatalf("block %d part %d shares cub with primary", b, part)
			}
		}
	}
}

func TestCoveringDisks(t *testing.T) {
	c := cfg(14, 4, 4)
	cov := c.CoveringDisks(55)
	want := []int{0, 1, 2, 3}
	for i, d := range cov {
		if d != want[i] {
			t.Fatalf("covering disks for 55 = %v", cov)
		}
	}
}

func TestFailoverFractions(t *testing.T) {
	// §2.3's examples: decluster 4 → 1/5 reserved, vulnerable span 8;
	// decluster 2 → 1/3 reserved.
	c4 := cfg(14, 4, 4)
	if got := c4.FailoverBandwidthFraction(); got != 0.2 {
		t.Fatalf("decluster 4 reserve = %v", got)
	}
	if got := c4.VulnerabilitySpan(); got != 8 {
		t.Fatalf("decluster 4 span = %v", got)
	}
	c2 := cfg(14, 4, 2)
	if got := c2.FailoverBandwidthFraction(); got < 0.333 || got > 0.334 {
		t.Fatalf("decluster 2 reserve = %v", got)
	}
}

func TestMirrorPartSize(t *testing.T) {
	c := cfg(3, 1, 2)
	f := File{BlockSize: 7}
	if c.MirrorPartSize(f) != 4 { // ceil(7/2)
		t.Fatalf("part size %d", c.MirrorPartSize(f))
	}
}

func TestPanicsOnBadBlock(t *testing.T) {
	c := cfg(3, 1, 2)
	f := File{ID: 1, StartDisk: 0, Blocks: 5}
	for _, fn := range []func(){
		func() { c.PrimaryDisk(f, -1) },
		func() { c.PrimaryDisk(f, 5) },
		func() { c.SecondaryDisk(f, 0, -1) },
		func() { c.SecondaryDisk(f, 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: every disk holds the same number of primary blocks of a
// whole-multiple-length file (perfect balance), and secondaries of one
// disk's blocks land on exactly the decluster following disks.
func TestQuickBalance(t *testing.T) {
	f := func(cubsRaw, dpcRaw, dcRaw uint8, startRaw uint16) bool {
		cubs := int(cubsRaw%8) + 2
		dpc := int(dpcRaw%4) + 1
		c := cfg(cubs, dpc, int(dcRaw)%(cubs*dpc-1)+1)
		if c.Validate() != nil {
			return true
		}
		n := c.NumDisks()
		file := File{ID: 1, StartDisk: int(startRaw) % n, Blocks: 3 * n, BlockSize: 64}
		count := make([]int, n)
		for b := 0; b < file.Blocks; b++ {
			count[c.PrimaryDisk(file, b)]++
		}
		for _, cnt := range count {
			if cnt != 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}
