package layout_test

import (
	"fmt"

	"tiger/internal/layout"
)

// Example shows the §2.2 striping and §2.3 declustered mirroring for
// the paper's Figure 2 configuration: three disks, decluster factor 2.
func Example() {
	cfg := layout.Config{Cubs: 3, DisksPerCub: 1, Decluster: 2}
	f := layout.File{ID: 1, StartDisk: 0, Blocks: 6, BlockSize: 262144}
	for b := 0; b < 3; b++ {
		p := cfg.PrimaryDisk(f, b)
		fmt.Printf("block %d: primary on disk %d, mirror pieces on disks %d and %d\n",
			b, p, cfg.SecondaryDisk(f, b, 0), cfg.SecondaryDisk(f, b, 1))
	}
	fmt.Printf("failover reserve: %.0f%% of bandwidth\n", cfg.FailoverBandwidthFraction()*100)
	// Output:
	// block 0: primary on disk 0, mirror pieces on disks 1 and 2
	// block 1: primary on disk 1, mirror pieces on disks 2 and 0
	// block 2: primary on disk 2, mirror pieces on disks 0 and 1
	// failover reserve: 33% of bandwidth
}
