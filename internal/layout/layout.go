// Package layout implements Tiger's file data layout (§2.2, §2.3): every
// file is striped block-by-block across every disk of every cub in
// cub-minor order, and each block's mirror copy is declustered across the
// disks immediately following its primary disk.
package layout

import (
	"fmt"

	"tiger/internal/msg"
)

// Config describes the physical shape of a Tiger system.
type Config struct {
	Cubs        int // number of cub machines
	DisksPerCub int // identical on every cub
	Decluster   int // pieces each mirror copy is split into (§2.3)

	// DomainSize groups consecutive cubs into failure domains — racks or
	// power groups that fail together (a breaker trip kills every cub in
	// the domain at once). 0 or 1 means every cub is its own domain. The
	// paper's deployment put consecutive cubs on one power strip, which is
	// the worst case for declustering: a domain of Decluster+1 adjacent
	// cubs is guaranteed to exhaust some mirror spans.
	DomainSize int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Cubs < 1:
		return fmt.Errorf("layout: need at least 1 cub, have %d", c.Cubs)
	case c.DisksPerCub < 1:
		return fmt.Errorf("layout: need at least 1 disk per cub, have %d", c.DisksPerCub)
	case c.Decluster < 1:
		return fmt.Errorf("layout: decluster factor must be >= 1, have %d", c.Decluster)
	case c.Decluster >= c.NumDisks():
		return fmt.Errorf("layout: decluster %d must be smaller than the %d disks",
			c.Decluster, c.NumDisks())
	case c.DomainSize < 0:
		return fmt.Errorf("layout: negative failure-domain size %d", c.DomainSize)
	case c.DomainSize > c.Cubs:
		return fmt.Errorf("layout: failure domain of %d cubs exceeds the %d cubs", c.DomainSize, c.Cubs)
	}
	return nil
}

// NumDisks returns the total number of disks in the system.
func (c Config) NumDisks() int { return c.Cubs * c.DisksPerCub }

// CubOfDisk returns the cub hosting the given disk. Tiger numbers disks
// in cub-minor order: disk 0 on cub 0, disk 1 on cub 1, ..., disk n on
// cub 0 again (§2.2). Consecutive disks are therefore always on
// consecutive cubs, which is what lets viewer states simply hop to the
// successor cub each block play time.
func (c Config) CubOfDisk(disk int) msg.NodeID {
	return msg.NodeID(disk % c.Cubs)
}

// DisksOfCub returns the disk numbers hosted by cub.
func (c Config) DisksOfCub(cub msg.NodeID) []int {
	disks := make([]int, 0, c.DisksPerCub)
	for d := int(cub); d < c.NumDisks(); d += c.Cubs {
		disks = append(disks, d)
	}
	return disks
}

// NextDisk returns the disk following d in striping order.
func (c Config) NextDisk(d int) int { return (d + 1) % c.NumDisks() }

// Successor returns the cub following cub in ring order.
func (c Config) Successor(cub msg.NodeID) msg.NodeID {
	return msg.NodeID((int(cub) + 1) % c.Cubs)
}

// Predecessor returns the cub preceding cub in ring order.
func (c Config) Predecessor(cub msg.NodeID) msg.NodeID {
	return msg.NodeID((int(cub) + c.Cubs - 1) % c.Cubs)
}

// File describes one striped content file.
type File struct {
	ID        msg.FileID
	StartDisk int   // disk holding block 0
	Blocks    int   // total number of blocks
	Bitrate   int64 // bits per second
	BlockSize int64 // bytes; bitrate-proportional in a multi-bitrate system
}

// PrimaryDisk returns the disk holding the primary copy of the given
// block: blocks are laid round-robin from the start disk (§2.2).
func (c Config) PrimaryDisk(f File, block int) int {
	if block < 0 || block >= f.Blocks {
		panic(fmt.Sprintf("layout: block %d out of range [0,%d) for file %d", block, f.Blocks, f.ID))
	}
	return (f.StartDisk + block) % c.NumDisks()
}

// SecondaryDisk returns the disk holding mirror piece part (0-based) of
// the given block. Tiger always stores the secondary parts on the disks
// immediately following the primary's disk (§2.3).
func (c Config) SecondaryDisk(f File, block, part int) int {
	if part < 0 || part >= c.Decluster {
		panic(fmt.Sprintf("layout: mirror part %d out of range [0,%d)", part, c.Decluster))
	}
	return (c.PrimaryDisk(f, block) + 1 + part) % c.NumDisks()
}

// SecondaryDiskFor returns the disk holding mirror piece part of a block
// whose primary disk is primaryDisk, without needing the file.
func (c Config) SecondaryDiskFor(primaryDisk, part int) int {
	return (primaryDisk + 1 + part) % c.NumDisks()
}

// CoveringDisks returns the disks that combine to serve reads for failed
// disk d: the decluster disks following it.
func (c Config) CoveringDisks(d int) []int {
	out := make([]int, c.Decluster)
	for i := range out {
		out[i] = (d + 1 + i) % c.NumDisks()
	}
	return out
}

// VulnerabilitySpan returns, for a single failed disk, the number of
// other disks whose additional failure would lose data: the disks whose
// secondaries live on d plus the disks holding d's secondaries (§2.3:
// "a second failure on any of 8 machines would result in the loss of
// data" for decluster 4).
func (c Config) VulnerabilitySpan() int { return 2 * c.Decluster }

// FailoverBandwidthFraction returns the fraction of disk and network
// bandwidth that must be reserved for failed-mode operation: with
// decluster k, each covering disk picks up 1/k of the failed disk's
// load, so 1/(k+1) of total bandwidth is reserved (§2.3).
func (c Config) FailoverBandwidthFraction() float64 {
	return 1 / float64(c.Decluster+1)
}

// MirrorPartSize returns the size of one declustered mirror piece.
func (c Config) MirrorPartSize(f File) int64 {
	return (f.BlockSize + int64(c.Decluster) - 1) / int64(c.Decluster)
}

// domainSize normalizes DomainSize: 0 (unset) means singleton domains.
func (c Config) domainSize() int {
	if c.DomainSize < 1 {
		return 1
	}
	return c.DomainSize
}

// NumDomains returns the number of failure domains. The last domain may
// be smaller than DomainSize when Cubs is not a multiple.
func (c Config) NumDomains() int {
	s := c.domainSize()
	return (c.Cubs + s - 1) / s
}

// DomainOfCub returns the failure domain containing cub.
func (c Config) DomainOfCub(cub msg.NodeID) int {
	return int(cub) / c.domainSize()
}

// CubsOfDomain returns the member cubs of failure domain d, in ring
// order. Domains group consecutive cubs, matching racks wired in
// installation order.
func (c Config) CubsOfDomain(d int) []msg.NodeID {
	if d < 0 || d >= c.NumDomains() {
		return nil
	}
	s := c.domainSize()
	lo, hi := d*s, (d+1)*s
	if hi > c.Cubs {
		hi = c.Cubs
	}
	out := make([]msg.NodeID, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, msg.NodeID(i))
	}
	return out
}

// UnservableCubs returns, given a predicate marking dead cubs, the dead
// cubs whose data cannot be reconstructed from mirrors: cub c is
// unservable iff c is dead and at least one of the next
// min(Decluster, Cubs-1) cubs in ring order is also dead. Because disks
// are numbered cub-minor, the decluster span of every disk of cub c
// lands on exactly the cubs c+1..c+Decluster (mod Cubs), so
// exhaustion is uniform across all of a cub's disks and computable in
// O(Cubs·Decluster) straight from the layout — no scan over streams or
// schedules. The result is sorted ascending.
func (c Config) UnservableCubs(dead func(msg.NodeID) bool) []msg.NodeID {
	span := c.Decluster
	if span > c.Cubs-1 {
		span = c.Cubs - 1
	}
	var out []msg.NodeID
	for i := 0; i < c.Cubs; i++ {
		if !dead(msg.NodeID(i)) {
			continue
		}
		for k := 1; k <= span; k++ {
			if dead(msg.NodeID((i + k) % c.Cubs)) {
				out = append(out, msg.NodeID(i))
				break
			}
		}
	}
	return out
}

// UnservableDisks returns the disks whose blocks cannot currently be
// served from either copy, sorted ascending. These are exactly the
// disks of the unservable cubs: a dead cub's disk is covered iff all
// Decluster disks following it are on live cubs, which depends only on
// the cub-level death pattern.
func (c Config) UnservableDisks(dead func(msg.NodeID) bool) []int {
	cubs := c.UnservableCubs(dead)
	if len(cubs) == 0 {
		return nil
	}
	bad := make(map[msg.NodeID]bool, len(cubs))
	for _, z := range cubs {
		bad[z] = true
	}
	out := make([]int, 0, len(cubs)*c.DisksPerCub)
	for d := 0; d < c.NumDisks(); d++ {
		if bad[c.CubOfDisk(d)] {
			out = append(out, d)
		}
	}
	return out
}

// DiskSpan is a maximal run of consecutive unservable disks in striping
// order: a stream whose play position enters [Start, Start+Len) in disk
// space cannot be served for Len consecutive block times.
type DiskSpan struct {
	Start int // first unservable disk of the run
	Len   int // number of consecutive unservable disks
}

// UnservableSpans groups UnservableDisks into maximal runs of
// consecutive disks, folding the wrap at NumDisks-1 → 0 into one span.
// Block b of file f is unservable iff PrimaryDisk(f, b) falls in some
// span, so these runs translate directly into slot/block trajectories:
// a viewer hits a span of length L for L consecutive block-play times,
// every NumDisks blocks.
func (c Config) UnservableSpans(dead func(msg.NodeID) bool) []DiskSpan {
	disks := c.UnservableDisks(dead)
	if len(disks) == 0 {
		return nil
	}
	n := c.NumDisks()
	if len(disks) == n {
		return []DiskSpan{{Start: 0, Len: n}}
	}
	bad := make([]bool, n)
	for _, d := range disks {
		bad[d] = true
	}
	var spans []DiskSpan
	for _, d := range disks {
		if bad[(d+n-1)%n] {
			continue // interior of a run; counted from its start
		}
		l := 1
		for bad[(d+l)%n] {
			l++
		}
		spans = append(spans, DiskSpan{Start: d, Len: l})
	}
	return spans
}
