// Package layout implements Tiger's file data layout (§2.2, §2.3): every
// file is striped block-by-block across every disk of every cub in
// cub-minor order, and each block's mirror copy is declustered across the
// disks immediately following its primary disk.
package layout

import (
	"fmt"

	"tiger/internal/msg"
)

// Config describes the physical shape of a Tiger system.
type Config struct {
	Cubs        int // number of cub machines
	DisksPerCub int // identical on every cub
	Decluster   int // pieces each mirror copy is split into (§2.3)
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Cubs < 1:
		return fmt.Errorf("layout: need at least 1 cub, have %d", c.Cubs)
	case c.DisksPerCub < 1:
		return fmt.Errorf("layout: need at least 1 disk per cub, have %d", c.DisksPerCub)
	case c.Decluster < 1:
		return fmt.Errorf("layout: decluster factor must be >= 1, have %d", c.Decluster)
	case c.Decluster >= c.NumDisks():
		return fmt.Errorf("layout: decluster %d must be smaller than the %d disks",
			c.Decluster, c.NumDisks())
	}
	return nil
}

// NumDisks returns the total number of disks in the system.
func (c Config) NumDisks() int { return c.Cubs * c.DisksPerCub }

// CubOfDisk returns the cub hosting the given disk. Tiger numbers disks
// in cub-minor order: disk 0 on cub 0, disk 1 on cub 1, ..., disk n on
// cub 0 again (§2.2). Consecutive disks are therefore always on
// consecutive cubs, which is what lets viewer states simply hop to the
// successor cub each block play time.
func (c Config) CubOfDisk(disk int) msg.NodeID {
	return msg.NodeID(disk % c.Cubs)
}

// DisksOfCub returns the disk numbers hosted by cub.
func (c Config) DisksOfCub(cub msg.NodeID) []int {
	disks := make([]int, 0, c.DisksPerCub)
	for d := int(cub); d < c.NumDisks(); d += c.Cubs {
		disks = append(disks, d)
	}
	return disks
}

// NextDisk returns the disk following d in striping order.
func (c Config) NextDisk(d int) int { return (d + 1) % c.NumDisks() }

// Successor returns the cub following cub in ring order.
func (c Config) Successor(cub msg.NodeID) msg.NodeID {
	return msg.NodeID((int(cub) + 1) % c.Cubs)
}

// Predecessor returns the cub preceding cub in ring order.
func (c Config) Predecessor(cub msg.NodeID) msg.NodeID {
	return msg.NodeID((int(cub) + c.Cubs - 1) % c.Cubs)
}

// File describes one striped content file.
type File struct {
	ID        msg.FileID
	StartDisk int   // disk holding block 0
	Blocks    int   // total number of blocks
	Bitrate   int64 // bits per second
	BlockSize int64 // bytes; bitrate-proportional in a multi-bitrate system
}

// PrimaryDisk returns the disk holding the primary copy of the given
// block: blocks are laid round-robin from the start disk (§2.2).
func (c Config) PrimaryDisk(f File, block int) int {
	if block < 0 || block >= f.Blocks {
		panic(fmt.Sprintf("layout: block %d out of range [0,%d) for file %d", block, f.Blocks, f.ID))
	}
	return (f.StartDisk + block) % c.NumDisks()
}

// SecondaryDisk returns the disk holding mirror piece part (0-based) of
// the given block. Tiger always stores the secondary parts on the disks
// immediately following the primary's disk (§2.3).
func (c Config) SecondaryDisk(f File, block, part int) int {
	if part < 0 || part >= c.Decluster {
		panic(fmt.Sprintf("layout: mirror part %d out of range [0,%d)", part, c.Decluster))
	}
	return (c.PrimaryDisk(f, block) + 1 + part) % c.NumDisks()
}

// SecondaryDiskFor returns the disk holding mirror piece part of a block
// whose primary disk is primaryDisk, without needing the file.
func (c Config) SecondaryDiskFor(primaryDisk, part int) int {
	return (primaryDisk + 1 + part) % c.NumDisks()
}

// CoveringDisks returns the disks that combine to serve reads for failed
// disk d: the decluster disks following it.
func (c Config) CoveringDisks(d int) []int {
	out := make([]int, c.Decluster)
	for i := range out {
		out[i] = (d + 1 + i) % c.NumDisks()
	}
	return out
}

// VulnerabilitySpan returns, for a single failed disk, the number of
// other disks whose additional failure would lose data: the disks whose
// secondaries live on d plus the disks holding d's secondaries (§2.3:
// "a second failure on any of 8 machines would result in the loss of
// data" for decluster 4).
func (c Config) VulnerabilitySpan() int { return 2 * c.Decluster }

// FailoverBandwidthFraction returns the fraction of disk and network
// bandwidth that must be reserved for failed-mode operation: with
// decluster k, each covering disk picks up 1/k of the failed disk's
// load, so 1/(k+1) of total bandwidth is reserved (§2.3).
func (c Config) FailoverBandwidthFraction() float64 {
	return 1 / float64(c.Decluster+1)
}

// MirrorPartSize returns the size of one declustered mirror piece.
func (c Config) MirrorPartSize(f File) int64 {
	return (f.BlockSize + int64(c.Decluster) - 1) / int64(c.Decluster)
}
