package layout

import (
	"reflect"
	"testing"

	"tiger/internal/msg"
)

// The failure-domain grouping and the mirror-exhaustion math are the
// foundation the degradation governor's park decisions rest on, so they
// are pinned here against hand-computed geometry.

func deadSet(cubs ...int) func(msg.NodeID) bool {
	m := make(map[msg.NodeID]bool, len(cubs))
	for _, c := range cubs {
		m[msg.NodeID(c)] = true
	}
	return func(z msg.NodeID) bool { return m[z] }
}

func TestDomainGrouping(t *testing.T) {
	c := Config{Cubs: 14, DisksPerCub: 4, Decluster: 4, DomainSize: 4}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.NumDomains(); got != 4 {
		t.Fatalf("NumDomains = %d, want 4 (three full racks and a ragged tail)", got)
	}
	if got := c.DomainOfCub(5); got != 1 {
		t.Fatalf("DomainOfCub(5) = %d, want 1", got)
	}
	if got := c.CubsOfDomain(1); !reflect.DeepEqual(got, []msg.NodeID{4, 5, 6, 7}) {
		t.Fatalf("CubsOfDomain(1) = %v, want [4 5 6 7]", got)
	}
	// 14 is not a multiple of 4: the last domain holds only cubs 12, 13.
	if got := c.CubsOfDomain(3); !reflect.DeepEqual(got, []msg.NodeID{12, 13}) {
		t.Fatalf("CubsOfDomain(3) = %v, want the ragged tail [12 13]", got)
	}
	// Unset domain size means singleton domains.
	s := Config{Cubs: 14, DisksPerCub: 4, Decluster: 4}
	if got := s.NumDomains(); got != 14 {
		t.Fatalf("NumDomains with DomainSize 0 = %d, want 14", got)
	}
	if got := s.CubsOfDomain(9); !reflect.DeepEqual(got, []msg.NodeID{9}) {
		t.Fatalf("singleton CubsOfDomain(9) = %v", got)
	}
}

func TestUnservableGeometry(t *testing.T) {
	c := Config{Cubs: 14, DisksPerCub: 4, Decluster: 4, DomainSize: 4}

	// Any single death is fully mirror-covered.
	for i := 0; i < c.Cubs; i++ {
		if got := c.UnservableCubs(deadSet(i)); len(got) != 0 {
			t.Fatalf("single death of cub %d exhausts %v", i, got)
		}
	}
	// A scattered pair outside each other's decluster span is covered too.
	if got := c.UnservableCubs(deadSet(2, 9)); len(got) != 0 {
		t.Fatalf("scattered pair exhausts %v", got)
	}
	// An adjacent pair breaches the first victim's span: cub 5's mirror
	// pieces live on cubs 6..9, and 6 is dead. Cub 6's own span (7..10)
	// is intact, so only cub 5 is unservable.
	if got := c.UnservableCubs(deadSet(5, 6)); !reflect.DeepEqual(got, []msg.NodeID{5}) {
		t.Fatalf("adjacent pair: unservable cubs %v, want [5]", got)
	}
	// Its disks are exactly cub 5's strided four.
	if got := c.UnservableDisks(deadSet(5, 6)); !reflect.DeepEqual(got, []int{5, 19, 33, 47}) {
		t.Fatalf("adjacent pair: unservable disks %v, want [5 19 33 47]", got)
	}
	// A whole domain (cubs 4..7): each of 4, 5, 6 has a dead successor
	// inside its span; 7's span (8..11) survives.
	if got := c.UnservableCubs(deadSet(4, 5, 6, 7)); !reflect.DeepEqual(got, []msg.NodeID{4, 5, 6}) {
		t.Fatalf("whole domain: unservable cubs %v, want [4 5 6]", got)
	}
	if got := c.UnservableDisks(deadSet(4, 5, 6, 7)); len(got) != 12 {
		t.Fatalf("whole domain: %d unservable disks, want 12", len(got))
	}
	// The wrap: killing the last and first cubs breaches the last cub's
	// span through the ring seam.
	if got := c.UnservableCubs(deadSet(13, 0)); !reflect.DeepEqual(got, []msg.NodeID{13}) {
		t.Fatalf("seam pair: unservable cubs %v, want [13]", got)
	}
}

func TestUnservableSpansFoldWrap(t *testing.T) {
	c := Config{Cubs: 8, DisksPerCub: 1, Decluster: 2}
	// Cubs 7 and 0 dead: cub 7 exhausted (span {0,1} contains 0), cub 0
	// covered (span {1,2} alive). One unservable disk at the seam.
	spans := c.UnservableSpans(deadSet(7, 0))
	if !reflect.DeepEqual(spans, []DiskSpan{{Start: 7, Len: 1}}) {
		t.Fatalf("seam spans %v, want [{7 1}]", spans)
	}
	// Three adjacent deaths: 3, 4 exhausted, 5 covered; one run of two.
	spans = c.UnservableSpans(deadSet(3, 4, 5))
	if !reflect.DeepEqual(spans, []DiskSpan{{Start: 3, Len: 2}}) {
		t.Fatalf("triple spans %v, want [{3 2}]", spans)
	}
	// Everything dead collapses to the single full-ring span.
	all := func(msg.NodeID) bool { return true }
	spans = c.UnservableSpans(all)
	if !reflect.DeepEqual(spans, []DiskSpan{{Start: 0, Len: 8}}) {
		t.Fatalf("full-ring spans %v", spans)
	}
}
