package trace

import (
	"strings"
	"testing"

	"tiger/internal/sim"
)

func ev(at int64, slot int32, k Kind) Event {
	return Event{At: sim.Time(at), Node: 1, Kind: k, Slot: slot, Instance: 7, Block: 3}
}

func TestRingRetainsChronological(t *testing.T) {
	r := NewRing(4)
	for i := int64(1); i <= 10; i++ {
		r.Add(ev(i, int32(i), Serve))
	}
	if r.Total() != 10 || r.Len() != 4 {
		t.Fatalf("total=%d len=%d", r.Total(), r.Len())
	}
	got := r.Events()
	for i, e := range got {
		if e.At != sim.Time(7+i) {
			t.Fatalf("event %d at %v; want chronological tail", i, e.At)
		}
	}
}

func TestRingUnderfilled(t *testing.T) {
	r := NewRing(8)
	r.Add(ev(1, 1, Insert))
	r.Add(ev(2, 2, Serve))
	got := r.Events()
	if len(got) != 2 || got[0].At != 1 || got[1].At != 2 {
		t.Fatalf("events %v", got)
	}
}

func TestSlotHistory(t *testing.T) {
	r := NewRing(16)
	r.Add(ev(1, 5, Insert))
	r.Add(ev(2, 6, Insert))
	r.Add(ev(3, 5, Serve))
	r.Add(ev(4, 5, Deschedule))
	h := r.SlotHistory(5)
	if len(h) != 3 {
		t.Fatalf("slot history %v", h)
	}
	if h[0].Kind != Insert || h[1].Kind != Serve || h[2].Kind != Deschedule {
		t.Fatalf("wrong order: %v", h)
	}
}

func TestDumpAndStrings(t *testing.T) {
	r := NewRing(4)
	r.Add(Event{At: sim.Time(1e9), Node: 3, Kind: Miss, Slot: 9, Instance: 2, Block: 4, Mirror: true})
	d := r.Dump()
	for _, want := range []string{"cub3", "miss", "slot=9", "mirror", "1 retained"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump lacks %q:\n%s", want, d)
		}
	}
	for _, k := range []Kind{Insert, Serve, Miss, Deschedule, Dead, Kind(99)} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	r := NewRing(0)
	r.Add(ev(1, 1, Serve))
	r.Add(ev(2, 2, Serve))
	if r.Len() != 1 || r.Events()[0].At != 2 {
		t.Fatalf("clamped ring kept %d events", r.Len())
	}
}
