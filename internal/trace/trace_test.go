package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"tiger/internal/msg"
	"tiger/internal/sim"
)

func ev(at int64, slot int32, k Kind) Event {
	return Event{At: sim.Time(at), Node: 1, Kind: k, Slot: slot, Instance: 7, Block: 3}
}

func TestRingRetainsChronological(t *testing.T) {
	r := NewRing(4)
	for i := int64(1); i <= 10; i++ {
		r.Add(ev(i, int32(i), Serve))
	}
	if r.Total() != 10 || r.Len() != 4 {
		t.Fatalf("total=%d len=%d", r.Total(), r.Len())
	}
	got := r.Events()
	for i, e := range got {
		if e.At != sim.Time(7+i) {
			t.Fatalf("event %d at %v; want chronological tail", i, e.At)
		}
	}
}

func TestRingUnderfilled(t *testing.T) {
	r := NewRing(8)
	r.Add(ev(1, 1, Insert))
	r.Add(ev(2, 2, Serve))
	got := r.Events()
	if len(got) != 2 || got[0].At != 1 || got[1].At != 2 {
		t.Fatalf("events %v", got)
	}
}

func TestSlotHistory(t *testing.T) {
	r := NewRing(16)
	r.Add(ev(1, 5, Insert))
	r.Add(ev(2, 6, Insert))
	r.Add(ev(3, 5, Serve))
	r.Add(ev(4, 5, Deschedule))
	h := r.SlotHistory(5)
	if len(h) != 3 {
		t.Fatalf("slot history %v", h)
	}
	if h[0].Kind != Insert || h[1].Kind != Serve || h[2].Kind != Deschedule {
		t.Fatalf("wrong order: %v", h)
	}
}

func TestDumpAndStrings(t *testing.T) {
	r := NewRing(4)
	r.Add(Event{At: sim.Time(1e9), Node: 3, Kind: Miss, Slot: 9, Instance: 2, Block: 4, Mirror: true})
	d := r.Dump()
	for _, want := range []string{"cub3", "miss", "slot=9", "mirror", "1 retained"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump lacks %q:\n%s", want, d)
		}
	}
	for _, k := range []Kind{Insert, Serve, Miss, Deschedule, Dead,
		Hedge, Quarantine, MoveCommit, MoveNack, RestripePhase, Kind(99)} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	r := NewRing(0)
	r.Add(ev(1, 1, Serve))
	r.Add(ev(2, 2, Serve))
	if r.Len() != 1 || r.Events()[0].At != 2 {
		t.Fatalf("clamped ring kept %d events", r.Len())
	}
}

func TestRingConcurrentAdd(t *testing.T) {
	// The rt runtime shares one ring across every cub executor; run
	// under -race this verifies Add/Events/Dump are safe in parallel.
	r := NewRing(64)
	var wg sync.WaitGroup
	const workers, each = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Add(Event{At: sim.Time(i), Node: msg.NodeID(w), Kind: Serve, Slot: int32(i)})
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		_ = r.Events()
		_ = r.Len()
		_ = r.Dropped()
	}
	wg.Wait()
	if got := r.Total(); got != workers*each {
		t.Fatalf("total %d, want %d", got, workers*each)
	}
	if got := r.Dropped(); got != workers*each-64 {
		t.Fatalf("dropped %d, want %d", got, workers*each-64)
	}
	if r.Len() != 64 {
		t.Fatalf("retained %d, want 64", r.Len())
	}
}

func TestRingWriteJSONL(t *testing.T) {
	r := NewRing(8)
	r.Add(Event{At: sim.Time(1e9), Node: 3, Kind: Insert, Slot: 7, Instance: 42, Block: 9})
	r.Add(Event{At: sim.Time(2e9), Node: 1, Kind: Miss, Slot: 8, Instance: 43, Block: 10, Mirror: true})
	var b bytes.Buffer
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %q", len(lines), b.String())
	}
	var hdr struct {
		Header   bool   `json:"header"`
		Total    uint64 `json:"total"`
		Dropped  uint64 `json:"dropped"`
		Retained int    `json:"retained"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatal(err)
	}
	if !hdr.Header || hdr.Total != 2 || hdr.Dropped != 0 || hdr.Retained != 2 {
		t.Fatalf("bad header: %+v", hdr)
	}
	lines = lines[1:]
	var e struct {
		AtNs   int64  `json:"at_ns"`
		Node   int32  `json:"node"`
		Kind   string `json:"kind"`
		Slot   int32  `json:"slot"`
		Inst   int64  `json:"inst"`
		Block  int32  `json:"block"`
		Mirror bool   `json:"mirror"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.AtNs != 1e9 || e.Node != 3 || e.Kind != "insert" || e.Slot != 7 || e.Inst != 42 || e.Block != 9 || e.Mirror {
		t.Fatalf("bad first line: %+v", e)
	}
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "miss" || !e.Mirror {
		t.Fatalf("bad second line: %+v", e)
	}
}
