// Package trace is a bounded, allocation-free protocol event log for
// post-mortem debugging of Tiger runs: which cub inserted, served, or
// missed what, and when. The harness wires it to the protocol's
// observation hooks; it never perturbs the protocol itself.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"tiger/internal/msg"
	"tiger/internal/sim"
)

// Kind classifies an event.
type Kind uint8

const (
	// Insert is a slot insertion under ownership (§4.1.3).
	Insert Kind = iota + 1
	// Serve is a block or mirror-piece send.
	Serve
	// Miss is a send that could not be made (late read or late state).
	Miss
	// Deschedule is a processed stop request.
	Deschedule
	// Dead is a deadman declaration.
	Dead
	// Hedge is a hedged mirror read issued against a suspected disk.
	Hedge
	// Quarantine is a disk quarantined by the health monitor; Slot
	// carries the disk ID.
	Quarantine
	// MoveCommit is an elastic-restripe block copy committed by a cub.
	MoveCommit
	// MoveNack is a refused move order (Slot carries the nack reason).
	MoveNack
	// RestripePhase is a restripe phase transition; Slot carries the
	// numeric phase (idle=0 … done=5).
	RestripePhase
	// Park is a stream removed by the degradation governor to protect
	// the survivors after a correlated failure.
	Park
	// Resume is a parked stream re-admitted after capacity returned.
	Resume
	// Unservable is a change in a cub's count of mirror-exhausted disks;
	// Slot carries the new count.
	Unservable
)

func (k Kind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Serve:
		return "serve"
	case Miss:
		return "miss"
	case Deschedule:
		return "desched"
	case Dead:
		return "dead"
	case Hedge:
		return "hedge"
	case Quarantine:
		return "quarantine"
	case MoveCommit:
		return "move-commit"
	case MoveNack:
		return "move-nack"
	case RestripePhase:
		return "restripe-phase"
	case Park:
		return "park"
	case Resume:
		return "resume"
	case Unservable:
		return "unservable"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one protocol occurrence.
type Event struct {
	At       sim.Time
	Node     msg.NodeID
	Kind     Kind
	Slot     int32
	Instance msg.InstanceID
	Block    int32
	Mirror   bool
}

// String renders the event one-per-line for dumps.
func (e Event) String() string {
	m := ""
	if e.Mirror {
		m = " mirror"
	}
	return fmt.Sprintf("%-12v %-10v %-8v slot=%d inst=%d block=%d%s",
		e.At, e.Node, e.Kind, e.Slot, e.Instance, e.Block, m)
}

// Ring is a fixed-capacity event buffer keeping the most recent events.
// It is safe for concurrent use: under the simulator everything is
// single-threaded, but in the rt runtime every cub's executor fires
// hooks in parallel, all appending to one shared ring. The eviction
// count is kept in an atomic so metrics exporters can read it without
// taking the lock.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
	drops atomic.Uint64 // events evicted by overflow
}

// NewRing creates a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Add records an event, evicting the oldest when full.
func (r *Ring) Add(e Event) {
	r.mu.Lock()
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		r.mu.Unlock()
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
	r.mu.Unlock()
	r.drops.Add(1)
}

// Total returns how many events were ever recorded.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events overflow has evicted. It is lock-free
// so a metrics registry can poll it from any goroutine.
func (r *Ring) Dropped() uint64 { return r.drops.Load() }

// Len returns how many events are currently retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Events returns retained events in chronological order.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Filter returns retained events matching the predicate, in order.
func (r *Ring) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// SlotHistory returns the retained events touching one slot — the
// natural question when investigating a suspected conflict.
func (r *Ring) SlotHistory(slot int32) []Event {
	return r.Filter(func(e Event) bool { return e.Slot == slot })
}

// jsonEvent is the JSONL wire form of an Event.
type jsonEvent struct {
	AtNs     int64  `json:"at_ns"`
	Node     int32  `json:"node"`
	Kind     string `json:"kind"`
	Slot     int32  `json:"slot"`
	Instance int64  `json:"inst"`
	Block    int32  `json:"block"`
	Mirror   bool   `json:"mirror,omitempty"`
}

// jsonHeader is the first line of a JSONL export: it tells the reader
// how many events ever happened and how many were evicted, so a
// truncated window is visible instead of silently passing for a
// complete record.
type jsonHeader struct {
	Header   bool   `json:"header"`
	Total    uint64 `json:"total"`
	Dropped  uint64 `json:"dropped"`
	Retained int    `json:"retained"`
}

// WriteJSONL streams the retained events as one JSON object per line,
// oldest first, preceded by a header line carrying the ring's total and
// drop counters — the machine-readable export behind
// Cluster.ExportEvents and tigerbench's BENCH_* artifacts.
func (r *Ring) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	events := r.Events()
	hdr := jsonHeader{Header: true, Total: r.Total(), Dropped: r.Dropped(), Retained: len(events)}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, e := range events {
		je := jsonEvent{
			AtNs:     int64(e.At),
			Node:     int32(e.Node),
			Kind:     e.Kind.String(),
			Slot:     e.Slot,
			Instance: int64(e.Instance),
			Block:    e.Block,
			Mirror:   e.Mirror,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Dump renders the retained events as text.
func (r *Ring) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d retained of %d total\n", r.Len(), r.Total())
	for _, e := range r.Events() {
		b.WriteString("  ")
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
