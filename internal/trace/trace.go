// Package trace is a bounded, allocation-free protocol event log for
// post-mortem debugging of Tiger runs: which cub inserted, served, or
// missed what, and when. The harness wires it to the protocol's
// observation hooks; it never perturbs the protocol itself.
package trace

import (
	"fmt"
	"strings"

	"tiger/internal/msg"
	"tiger/internal/sim"
)

// Kind classifies an event.
type Kind uint8

const (
	// Insert is a slot insertion under ownership (§4.1.3).
	Insert Kind = iota + 1
	// Serve is a block or mirror-piece send.
	Serve
	// Miss is a send that could not be made (late read or late state).
	Miss
	// Deschedule is a processed stop request.
	Deschedule
	// Dead is a deadman declaration.
	Dead
)

func (k Kind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Serve:
		return "serve"
	case Miss:
		return "miss"
	case Deschedule:
		return "desched"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one protocol occurrence.
type Event struct {
	At       sim.Time
	Node     msg.NodeID
	Kind     Kind
	Slot     int32
	Instance msg.InstanceID
	Block    int32
	Mirror   bool
}

// String renders the event one-per-line for dumps.
func (e Event) String() string {
	m := ""
	if e.Mirror {
		m = " mirror"
	}
	return fmt.Sprintf("%-12v %-10v %-8v slot=%d inst=%d block=%d%s",
		e.At, e.Node, e.Kind, e.Slot, e.Instance, e.Block, m)
}

// Ring is a fixed-capacity event buffer keeping the most recent events.
// It is not safe for concurrent use; in the simulator everything is
// single-threaded, and the rt runtime would wrap it per node.
type Ring struct {
	buf   []Event
	next  int
	total uint64
}

// NewRing creates a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Add records an event, evicting the oldest when full.
func (r *Ring) Add(e Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

// Total returns how many events were ever recorded.
func (r *Ring) Total() uint64 { return r.total }

// Len returns how many events are currently retained.
func (r *Ring) Len() int { return len(r.buf) }

// Events returns retained events in chronological order.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Filter returns retained events matching the predicate, in order.
func (r *Ring) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// SlotHistory returns the retained events touching one slot — the
// natural question when investigating a suspected conflict.
func (r *Ring) SlotHistory(slot int32) []Event {
	return r.Filter(func(e Event) bool { return e.Slot == slot })
}

// Dump renders the retained events as text.
func (r *Ring) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d retained of %d total\n", r.Len(), r.Total())
	for _, e := range r.Events() {
		b.WriteString("  ")
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
