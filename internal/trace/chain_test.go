package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tiger/internal/msg"
	"tiger/internal/sim"
)

func hop(at int64, node msg.NodeID, k HopKind, slack int64) Hop {
	return Hop{At: sim.Time(at), Node: node, Kind: k, Slack: slack, Slot: 3, Disk: -1}
}

func TestChainLogRecordAndChain(t *testing.T) {
	l := NewChainLog(8, 16)
	l.Record(7, 1, hop(10, 0, HopInsert, 4000))
	l.Record(7, 1, hop(20, 0, HopDiskQueue, 3000))
	l.Record(7, 1, hop(30, 0, HopSend, 1000))
	l.Record(7, 2, hop(40, 1, HopState, 5000))

	got := l.Chain(7, 1)
	if len(got) != 3 || got[0].Kind != HopInsert || got[2].Kind != HopSend {
		t.Fatalf("chain %v", got)
	}
	if got[1].Slack != 3000 {
		t.Fatalf("slack %d", got[1].Slack)
	}
	if l.Len() != 2 {
		t.Fatalf("len %d", l.Len())
	}
	if c := l.Chain(7, 99); c != nil {
		t.Fatalf("missing chain returned %v", c)
	}
	// The returned chain is a copy: appending hops later must not alias.
	l.Record(7, 1, hop(35, 0, HopReceipt, 500))
	if len(got) != 3 {
		t.Fatal("Chain result aliased the live log")
	}
}

func TestChainLogEvictsInsertionOrder(t *testing.T) {
	l := NewChainLog(3, 4)
	for b := int32(1); b <= 5; b++ {
		l.Record(1, b, hop(int64(b), 0, HopInsert, 0))
	}
	// Blocks 1 and 2 are the oldest chains and must be gone; 3..5 retained.
	if l.Chain(1, 1) != nil || l.Chain(1, 2) != nil {
		t.Fatal("oldest chains survived eviction")
	}
	for b := int32(3); b <= 5; b++ {
		if l.Chain(1, b) == nil {
			t.Fatalf("block %d evicted out of order", b)
		}
	}
	if l.ChainsEvicted() != 2 {
		t.Fatalf("evicted %d, want 2", l.ChainsEvicted())
	}
	keys := l.Keys()
	if len(keys) != 3 || keys[0].Block != 3 || keys[2].Block != 5 {
		t.Fatalf("keys %v", keys)
	}
}

func TestChainLogHopCap(t *testing.T) {
	l := NewChainLog(2, 3)
	for i := int64(0); i < 10; i++ {
		l.Record(1, 1, hop(i, 0, HopState, 0))
	}
	if got := len(l.Chain(1, 1)); got != 3 {
		t.Fatalf("retained %d hops, want 3", got)
	}
	if l.HopsDropped() != 7 {
		t.Fatalf("dropped %d hops, want 7", l.HopsDropped())
	}
}

func TestChainLogNilSafe(t *testing.T) {
	var l *ChainLog
	l.Record(1, 1, hop(1, 0, HopInsert, 0)) // must not panic
	if l.Chain(1, 1) != nil || l.Keys() != nil || l.Len() != 0 ||
		l.ChainsEvicted() != 0 || l.HopsDropped() != 0 {
		t.Fatal("nil log not inert")
	}
}

func TestSortHopsDeterministic(t *testing.T) {
	hops := []Hop{
		{At: 20, Node: 2, Kind: HopSend},
		{At: 10, Node: 1, Kind: HopState},
		{At: 20, Node: 1, Kind: HopDiskRead},
		{At: 10, Node: 0, Kind: HopState},
	}
	SortHops(hops)
	want := []HopKind{HopState, HopState, HopDiskRead, HopSend}
	for i, k := range want {
		if hops[i].Kind != k {
			t.Fatalf("position %d: %v, want %v (%v)", i, hops[i].Kind, k, hops)
		}
	}
	if hops[0].Node != 0 || hops[1].Node != 1 {
		t.Fatalf("same-instant same-kind hops not node-ordered: %v", hops)
	}
}

func TestHopJSONForm(t *testing.T) {
	h := Hop{At: sim.Time(2e9), Node: 3, Kind: HopDiskRead, Slack: 1500, Slot: 9, Disk: 12, Mirror: true}
	b, err := json.Marshal(h.JSON())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind":"disk-read"`, `"slack_ns":1500`, `"disk":12`, `"mirror":true`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("json lacks %s: %s", want, b)
		}
	}
	for k := HopAdmit; k <= HopReceipt; k++ {
		if s := k.String(); s == "" || strings.Contains(s, "?") {
			t.Errorf("missing name for hop kind %d", k)
		}
	}
}

// TestChainRecordAllocBudget pins the tracing cost: recording into a nil
// log (tracing off) is free, and steady-state recording into a warm log
// performs no allocations — all chain and hop storage is preallocated
// and recycled through eviction.
func TestChainRecordAllocBudget(t *testing.T) {
	var off *ChainLog
	if a := testing.AllocsPerRun(200, func() {
		off.Record(1, 1, Hop{Kind: HopSend})
	}); a != 0 {
		t.Errorf("nil-log Record allocated %.1f/op, want 0", a)
	}

	l := NewChainLog(4, 4)
	// Warm every slot so eviction recycling is the steady state.
	for b := int32(0); b < 8; b++ {
		l.Record(1, b, Hop{Kind: HopInsert})
	}
	b := int32(100)
	if a := testing.AllocsPerRun(500, func() {
		l.Record(1, b, Hop{Kind: HopInsert}) // new chain: recycled slot
		l.Record(1, b, Hop{Kind: HopSend})   // existing chain: append in place
		b++
	}); a != 0 {
		t.Errorf("steady-state Record allocated %.1f/op, want 0", a)
	}
}

func TestRingJSONLHeaderReportsDrops(t *testing.T) {
	r := NewRing(2)
	for i := int64(1); i <= 5; i++ {
		r.Add(Event{At: sim.Time(i), Kind: Serve})
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	var hdr struct {
		Header   bool   `json:"header"`
		Total    uint64 `json:"total"`
		Dropped  uint64 `json:"dropped"`
		Retained int    `json:"retained"`
	}
	if err := json.Unmarshal([]byte(first), &hdr); err != nil {
		t.Fatal(err)
	}
	if !hdr.Header || hdr.Total != 5 || hdr.Dropped != 3 || hdr.Retained != 2 {
		t.Fatalf("header %+v, want total=5 dropped=3 retained=2", hdr)
	}
}
