// Causal block chains: while the Ring answers "what happened on this
// cub recently", a ChainLog answers "what happened to THIS block" — the
// typed hop sequence admit → slot-insert → ownership → disk-queue →
// disk-read → (hedge) → send → receipt, each hop stamped with sim-time
// and the deadline slack remaining when it fired. The protocol records
// hops only for messages carrying the trace flag and only into a
// non-nil log, so the off path is a single pointer test; the on path is
// bounded: at most maxChains block chains of maxHops hops each, oldest
// chain evicted first in strict insertion order (never map order) so
// traced runs replay byte-identically.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"

	"tiger/internal/msg"
	"tiger/internal/sim"
)

// HopKind types one step of a block's causal chain.
type HopKind uint8

const (
	// HopAdmit is the controller admitting the stream's start request.
	HopAdmit HopKind = iota + 1
	// HopInsert is the slot insertion under ownership (§4.1.3).
	HopInsert
	// HopState is the owning cub accepting the block's viewer state as
	// it arrives down the gossip ring (§4.1.1).
	HopState
	// HopDeschedule is a deschedule scrubbing the block's slot (§4.1.2).
	HopDeschedule
	// HopDiskQueue is the read being issued to the disk queue.
	HopDiskQueue
	// HopDiskRead is the read completing into a buffer.
	HopDiskRead
	// HopHedge is a hedged mirror read issued against a suspected disk.
	HopHedge
	// HopSend is the block handed to the network at its due time.
	HopSend
	// HopMiss is the due time passing with no block to send.
	HopMiss
	// HopReceipt is the delivery landing at the viewer.
	HopReceipt
)

func (k HopKind) String() string {
	switch k {
	case HopAdmit:
		return "admit"
	case HopInsert:
		return "insert"
	case HopState:
		return "state"
	case HopDeschedule:
		return "desched"
	case HopDiskQueue:
		return "disk-queue"
	case HopDiskRead:
		return "disk-read"
	case HopHedge:
		return "hedge"
	case HopSend:
		return "send"
	case HopMiss:
		return "miss"
	case HopReceipt:
		return "receipt"
	}
	return "hop(?)"
}

// Hop is one causal step. Slack is the block's remaining deadline slack
// (due − now) in nanoseconds when the hop fired; negative means the hop
// happened after the deadline. Disk is -1 for hops not tied to a disk.
type Hop struct {
	At     sim.Time
	Node   msg.NodeID
	Kind   HopKind
	Slack  int64
	Slot   int32
	Disk   int32
	Mirror bool
}

// JSONHop is the JSONL/report wire form of a Hop.
type JSONHop struct {
	AtNs    int64  `json:"at_ns"`
	Node    int32  `json:"node"`
	Kind    string `json:"kind"`
	SlackNs int64  `json:"slack_ns"`
	Slot    int32  `json:"slot"`
	Disk    int32  `json:"disk,omitempty"`
	Mirror  bool   `json:"mirror,omitempty"`
}

// JSON converts the hop to its wire form.
func (h Hop) JSON() JSONHop {
	return JSONHop{
		AtNs: int64(h.At), Node: int32(h.Node), Kind: h.Kind.String(),
		SlackNs: h.Slack, Slot: h.Slot, Disk: h.Disk, Mirror: h.Mirror,
	}
}

// ChainKey identifies one block of one stream instance.
type ChainKey struct {
	Instance msg.InstanceID
	Block    int32
}

// SortHops orders a chain merged from several cubs' logs. Sim time is
// the primary key; (kind, node, disk) break the rare same-instant ties
// deterministically.
func SortHops(hops []Hop) {
	sort.Slice(hops, func(i, j int) bool {
		a, b := hops[i], hops[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Disk < b.Disk
	})
}

// chainSlot is one reusable chain cell; after eviction its hops slice
// keeps its capacity so steady-state recording stays allocation-free.
type chainSlot struct {
	key  ChainKey
	hops []Hop
}

// ChainLog is a bounded per-node store of causal chains. A nil *ChainLog
// is valid and inert: Record on it is a no-op, so call sites need no
// separate enable flag.
type ChainLog struct {
	mu      sync.Mutex
	index   map[ChainKey]int
	slots   []chainSlot
	next    int // eviction cursor once slots is full
	maxHops int

	chainsEvicted atomic.Uint64
	hopsDropped   atomic.Uint64
}

// NewChainLog creates a log of up to maxChains chains of maxHops hops
// each. Bounds below 1 are clamped.
func NewChainLog(maxChains, maxHops int) *ChainLog {
	if maxChains < 1 {
		maxChains = 1
	}
	if maxHops < 1 {
		maxHops = 1
	}
	return &ChainLog{
		index:   make(map[ChainKey]int, maxChains),
		slots:   make([]chainSlot, 0, maxChains),
		maxHops: maxHops,
	}
}

// Record appends one hop to the block's chain, creating the chain (and
// evicting the oldest, in insertion order) as needed. Safe on a nil
// receiver.
func (l *ChainLog) Record(inst msg.InstanceID, block int32, h Hop) {
	if l == nil {
		return
	}
	key := ChainKey{Instance: inst, Block: block}
	l.mu.Lock()
	i, ok := l.index[key]
	if !ok {
		if len(l.slots) < cap(l.slots) {
			l.slots = append(l.slots, chainSlot{key: key, hops: make([]Hop, 0, l.maxHops)})
			i = len(l.slots) - 1
		} else {
			i = l.next
			l.next = (l.next + 1) % cap(l.slots)
			delete(l.index, l.slots[i].key)
			l.slots[i].key = key
			l.slots[i].hops = l.slots[i].hops[:0]
			l.chainsEvicted.Add(1)
		}
		l.index[key] = i
	}
	if len(l.slots[i].hops) >= l.maxHops {
		l.mu.Unlock()
		l.hopsDropped.Add(1)
		return
	}
	l.slots[i].hops = append(l.slots[i].hops, h)
	l.mu.Unlock()
}

// Has reports whether a chain is currently retained for the block. Safe
// on a nil receiver.
func (l *ChainLog) Has(inst msg.InstanceID, block int32) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.index[ChainKey{Instance: inst, Block: block}]
	return ok
}

// Chain returns a copy of the block's hops, or nil if the chain was
// never recorded (or already evicted). Safe on a nil receiver.
func (l *ChainLog) Chain(inst msg.InstanceID, block int32) []Hop {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	i, ok := l.index[ChainKey{Instance: inst, Block: block}]
	if !ok {
		return nil
	}
	return append([]Hop(nil), l.slots[i].hops...)
}

// Keys returns the retained chain keys sorted by (instance, block).
func (l *ChainLog) Keys() []ChainKey {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]ChainKey, 0, len(l.index))
	for k := range l.index {
		out = append(out, k)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Instance != out[j].Instance {
			return out[i].Instance < out[j].Instance
		}
		return out[i].Block < out[j].Block
	})
	return out
}

// Len returns the number of retained chains.
func (l *ChainLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.index)
}

// ChainsEvicted returns how many whole chains overflow has evicted.
func (l *ChainLog) ChainsEvicted() uint64 {
	if l == nil {
		return 0
	}
	return l.chainsEvicted.Load()
}

// HopsDropped returns how many hops were discarded because their chain
// was already at maxHops.
func (l *ChainLog) HopsDropped() uint64 {
	if l == nil {
		return 0
	}
	return l.hopsDropped.Load()
}
