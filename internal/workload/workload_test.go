package workload

import (
	"math/rand"
	"testing"
	"time"
)

func TestUniformCoversCatalogue(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		f := (Uniform{}).Pick(rng, 8)
		if f < 0 || f >= 8 {
			t.Fatalf("out of range: %d", f)
		}
		seen[f] = true
	}
	if len(seen) != 8 {
		t.Fatalf("only %d of 8 titles picked", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := &Zipf{S: 1.2}
	counts := make([]int, 16)
	for i := 0; i < 20000; i++ {
		counts[z.Pick(rng, 16)]++
	}
	if counts[0] < 3*counts[8] {
		t.Fatalf("no skew: head=%d mid=%d", counts[0], counts[8])
	}
	// Re-dimensioning the catalogue re-seeds the sampler.
	if f := z.Pick(rng, 4); f < 0 || f >= 4 {
		t.Fatalf("resized pick out of range: %d", f)
	}
}

func TestSingleTitle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := SingleTitle{Title: 5}
	for i := 0; i < 20; i++ {
		if s.Pick(rng, 8) != 5 {
			t.Fatal("flash crowd wandered")
		}
	}
	if (SingleTitle{Title: 99}).Pick(rng, 8) != 0 {
		t.Fatal("out-of-range title not clamped")
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := Poisson{Rate: 5}
	total := 0
	ticks := 4000
	for i := 0; i < ticks; i++ {
		total += p.Next(rng, time.Second)
	}
	mean := float64(total) / float64(ticks)
	if mean < 4.5 || mean > 5.5 {
		t.Fatalf("poisson mean %.2f, want ~5", mean)
	}
	if p.Next(rng, 0) != 0 {
		t.Fatal("zero-length tick produced arrivals")
	}
}

func TestBurstFiresOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := &Burst{Size: 100}
	if b.Next(rng, time.Second) != 100 {
		t.Fatal("burst did not fire")
	}
	for i := 0; i < 5; i++ {
		if b.Next(rng, time.Second) != 0 {
			t.Fatal("burst fired twice")
		}
	}
}

func TestExponentialSessions(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e := Exponential{Mean: 100 * time.Second}
	leaves := 0
	for i := 0; i < 100000; i++ {
		if e.Leaves(rng, time.Second) {
			leaves++
		}
	}
	// P(leave per second) ~ 1/100.
	if leaves < 800 || leaves > 1200 {
		t.Fatalf("departure rate %d per 100k ticks, want ~1000", leaves)
	}
	if (Exponential{}).Leaves(rng, time.Second) {
		t.Fatal("immortal sessions departed")
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{
		Arrivals:   Poisson{Rate: 1},
		Popularity: Uniform{},
		Sessions:   Exponential{Mean: time.Minute},
		Tick:       time.Second,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Arrivals = nil
	if bad.Validate() == nil {
		t.Fatal("nil arrivals accepted")
	}
	bad = good
	bad.Tick = 0
	if bad.Validate() == nil {
		t.Fatal("zero tick accepted")
	}
}
