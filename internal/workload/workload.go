// Package workload generates viewer demand for Tiger experiments:
// arrival processes, file-popularity distributions, and session-length
// models. The paper's motivation is exactly skewed demand — "the system
// will not overload even if all of the viewers request the same file" —
// so workloads here range from uniform to single-title flash crowds.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Popularity chooses which file each arriving viewer requests.
type Popularity interface {
	// Pick returns a file index in [0, n).
	Pick(rng *rand.Rand, n int) int
}

// Uniform popularity: every title equally likely.
type Uniform struct{}

// Pick implements Popularity.
func (Uniform) Pick(rng *rand.Rand, n int) int { return rng.Intn(n) }

// Zipf popularity with exponent S (typical video-on-demand catalogues:
// 0.8-1.3). Title 0 is the most popular.
type Zipf struct {
	S float64
	z *rand.Zipf
	n int
}

// Pick implements Popularity.
func (z *Zipf) Pick(rng *rand.Rand, n int) int {
	if z.z == nil || z.n != n {
		s := z.S
		if s <= 1 {
			s = 1.0001 // rand.Zipf requires s > 1
		}
		z.z = rand.NewZipf(rng, s, 1, uint64(n-1))
		z.n = n
	}
	return int(z.z.Uint64())
}

// SingleTitle popularity: the flash crowd — everyone wants file Title.
type SingleTitle struct{ Title int }

// Pick implements Popularity.
func (s SingleTitle) Pick(rng *rand.Rand, n int) int {
	if s.Title < 0 || s.Title >= n {
		return 0
	}
	return s.Title
}

// Arrivals produces the number of new viewers in each tick.
type Arrivals interface {
	// Next returns how many viewers arrive during a tick of length dt.
	Next(rng *rand.Rand, dt time.Duration) int
}

// Poisson arrivals at Rate viewers per second.
type Poisson struct{ Rate float64 }

// Next implements Arrivals by inversion sampling.
func (p Poisson) Next(rng *rand.Rand, dt time.Duration) int {
	lambda := p.Rate * dt.Seconds()
	if lambda <= 0 {
		return 0
	}
	// Knuth's method; lambda per tick is small in practice.
	l := math.Exp(-lambda)
	k, prod := 0, 1.0
	for {
		prod *= rng.Float64()
		if prod <= l {
			return k
		}
		k++
		if k > 10000 {
			return k // guard against pathological parameters
		}
	}
}

// Burst arrivals: everyone shows up in the first tick — the premiere.
type Burst struct {
	Size int
	done bool
}

// Next implements Arrivals.
func (b *Burst) Next(rng *rand.Rand, dt time.Duration) int {
	if b.done {
		return 0
	}
	b.done = true
	return b.Size
}

// Sessions models how long a viewer stays.
type Sessions interface {
	// Leaves reports whether a viewer departs during a tick of length dt.
	Leaves(rng *rand.Rand, dt time.Duration) bool
}

// Exponential session lengths with the given mean. Mean <= 0 means
// viewers never stop (play to end of file).
type Exponential struct{ Mean time.Duration }

// Leaves implements Sessions.
func (e Exponential) Leaves(rng *rand.Rand, dt time.Duration) bool {
	if e.Mean <= 0 {
		return false
	}
	p := 1 - math.Exp(-dt.Seconds()/e.Mean.Seconds())
	return rng.Float64() < p
}

// Spec bundles a workload.
type Spec struct {
	Arrivals   Arrivals
	Popularity Popularity
	Sessions   Sessions
	Tick       time.Duration
}

// Validate checks the spec is runnable.
func (s Spec) Validate() error {
	if s.Arrivals == nil || s.Popularity == nil || s.Sessions == nil {
		return fmt.Errorf("workload: incomplete spec %+v", s)
	}
	if s.Tick <= 0 {
		return fmt.Errorf("workload: non-positive tick")
	}
	return nil
}
