package tiger

import (
	"fmt"
	"sync"
	"time"

	"tiger/internal/chaos"
	"tiger/internal/core"
	"tiger/internal/disk"
	"tiger/internal/msg"
	"tiger/internal/netsim"
	"tiger/internal/sim"
)

// This file adapts a Cluster to the chaos scenario engine
// (internal/chaos): the System shim the runner drives, the standard
// invariant set checked every tick, and the partition-duration sweep
// behind `tigerbench -exp chaos`.

// chaosSystem adapts *Cluster to chaos.System.
type chaosSystem struct{ c *Cluster }

func (s chaosSystem) NumCubs() int           { return len(s.c.Cubs) }
func (s chaosSystem) Net() *netsim.Network   { return s.c.Net }
func (s chaosSystem) CrashCub(i int)         { s.c.CrashCub(i) }
func (s chaosSystem) RestartCub(i int)       { s.c.RestartCub(i) }
func (s chaosSystem) FailCub(i int)          { s.c.FailCub(i) }
func (s chaosSystem) ReviveCub(i int)        { s.c.ReviveCub(i) }
func (s chaosSystem) RunFor(d time.Duration) { s.c.RunFor(d) }
func (s chaosSystem) Now() sim.Time          { return s.c.Now() }

// FailDisk kills the cub's disk-th local drive (0..DisksPerCub-1);
// chaos scenarios name disks cub-locally so schedules stay valid across
// layout changes — including mid-run restripes that renumber every disk.
func (s chaosSystem) FailDisk(cub, disk int) {
	c := s.c.Cubs[cub]
	c.FailDisk(c.NativeDiskKey(disk))
}

// diskFaults mutates the fault state of the cub's idx-th local drive.
func (s chaosSystem) diskFaults(cub, idx int, mut func(*disk.Faults)) {
	dk := s.c.Cubs[cub].DiskByIndex(idx)
	f := dk.Faults()
	mut(&f)
	dk.SetFaults(f)
}

func (s chaosSystem) SlowDisk(cub, idx int, factor float64) {
	s.diskFaults(cub, idx, func(f *disk.Faults) { f.SlowFactor = factor })
}
func (s chaosSystem) ErrorDisk(cub, idx int, prob float64) {
	s.diskFaults(cub, idx, func(f *disk.Faults) { f.ErrProb = prob })
}
func (s chaosSystem) StickDisk(cub, idx int) {
	s.diskFaults(cub, idx, func(f *disk.Faults) { f.Stuck = true })
}
func (s chaosSystem) HealDisk(cub, idx int) {
	s.diskFaults(cub, idx, func(f *disk.Faults) { *f = disk.Faults{} })
}

// StartRestripe and RestripePhase make the cluster an
// chaos.ElasticSystem, unlocking the restripe step kinds.
func (s chaosSystem) StartRestripe(targetCubs int) error { return s.c.StartRestripe(targetCubs) }
func (s chaosSystem) RestripePhase() string              { return s.c.RestripePhase() }

// CrashDomain and RestartDomain make the cluster a chaos.DomainSystem,
// unlocking the domain step kinds.
func (s chaosSystem) CrashDomain(d int) ([]int, error)   { return s.c.CrashDomain(d) }
func (s chaosSystem) RestartDomain(d int) ([]int, error) { return s.c.RestartDomain(d) }

// CrashController and friends make the cluster a chaos.ControllerSystem,
// unlocking the controller-failover step kinds.
func (s chaosSystem) CrashController()     { s.c.CrashController() }
func (s chaosSystem) RestartController()   { s.c.RestartController() }
func (s chaosSystem) ControllerDown() bool { return s.c.ControllerDown() }
func (s chaosSystem) ParkedStreams() int   { return s.c.ParkedStreams() }

// serveKey identifies one block or mirror-piece service. Exactly one cub
// may perform each: the slot owner for primaries, the covering disk's
// cub for mirror pieces. Two cubs serving the same key is the
// double-service the distributed schedule must never produce.
type serveKey struct {
	inst   msg.InstanceID
	seq    int32
	mirror bool
	part   int8
}

type serveRec struct {
	by msg.NodeID
	at sim.Time
}

// servePruneAfter bounds the serve oracle's memory: duplicate services
// of one key are near-simultaneous (a mirror piece is due within one
// block-play of its primary), so records older than this cannot witness
// a violation any more.
const servePruneAfter = 10 * time.Second

// ChaosHarness attaches the chaos invariant set to a cluster. It layers
// a double-service oracle onto the cubs' hooks (the built-in
// slot-conflict oracle, the trace ring and the flight recorder keep
// firing), and derives the runner's Invariants from the cluster's
// counters, baselined at harness creation so earlier history is not
// re-reported. Close removes the layer.
type ChaosHarness struct {
	c *Cluster

	// mu guards the serve oracle's state: under sim.Sharded the OnServe
	// hook fires from concurrent shard goroutines. Single-engine runs
	// pay one uncontended lock per serve.
	mu         sync.Mutex
	serves     map[serveKey]serveRec
	doubles    int
	lastDouble string
	reported   int // doubles already surfaced as violations

	baseSlot  int   // oracle violations at harness creation
	baseState int64 // state conflicts at harness creation
}

// NewChaosHarness wires the harness into the cluster's hooks.
func NewChaosHarness(c *Cluster) *ChaosHarness {
	h := &ChaosHarness{
		c:         c,
		serves:    make(map[serveKey]serveRec),
		baseSlot:  c.InvariantViolations(),
		baseState: c.TotalCubStats().Conflicts,
	}
	// Publish through the hook layers so cubs created mid-run (an elastic
	// restripe growing the array) observe the serve oracle too.
	c.harnessHooks = core.Hooks{OnServe: h.onServe}
	c.publishHooks()
	return h
}

// Close detaches the serve oracle layer; the other layers stay.
func (h *ChaosHarness) Close() {
	h.c.harnessHooks = core.Hooks{}
	h.c.publishHooks()
}

func (h *ChaosHarness) onServe(cub msg.NodeID, vs msg.ViewerState) {
	h.mu.Lock()
	defer h.mu.Unlock()
	k := serveKey{inst: vs.Instance, seq: vs.PlaySeq, mirror: vs.Mirror, part: vs.Part}
	if prev, ok := h.serves[k]; ok && prev.by != cub {
		h.doubles++
		h.lastDouble = fmt.Sprintf("instance %d playseq %d (mirror=%v part %d) served by cub %v and cub %v",
			vs.Instance, vs.PlaySeq, vs.Mirror, vs.Part, prev.by, cub)
		// The flight recorder walks serial-engine state (clock, causal
		// chains, the trace ring); under a sharded engine the hook fires
		// on shard goroutines, so only the count and detail string are
		// recorded there.
		if fr := h.c.flight; fr != nil && h.c.sharded == nil {
			fr.doubleServe(cub, vs, h.lastDouble)
		}
		return
	}
	// Stamp the record with the state's due time, not the cluster clock:
	// under sim.Sharded this hook runs on shard goroutines, where reading
	// another shard's engine clock would race. Due is within one state
	// lead of now, which is far inside the prune horizon.
	h.serves[k] = serveRec{by: cub, at: sim.Time(vs.Due)}
}

func (h *ChaosHarness) pruneServes() {
	h.mu.Lock()
	defer h.mu.Unlock()
	cut := h.c.Now().Add(-servePruneAfter)
	for k, r := range h.serves {
		if r.at < cut {
			delete(h.serves, k)
		}
	}
}

// DoubleServes returns how many duplicate services the oracle observed.
func (h *ChaosHarness) DoubleServes() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.doubles
}

// Converged reports whether the cluster has returned to a clean steady
// state: no cub believes any peer dead, and no mirror load covers a cub
// whose own disks are all healthy. Cubs with genuinely failed disks are
// excluded — their mirror load is the permanent failed-mode coverage the
// paper's declustering is for, not residue to drain.
func (h *ChaosHarness) Converged() bool {
	for i, cub := range h.c.Cubs {
		if cub.BelievedDead() != 0 {
			return false
		}
		if cub.FailedDisks() == 0 && h.c.MirrorLoadFor(i) != 0 {
			return false
		}
	}
	return true
}

// Invariants returns the standard invariant set, baselined now. The
// counter-backed checks (slot conflicts, state conflicts, double
// service) report each new event once; the quiet-only checks (mirror
// conservation, convergence) engage once no fault is outstanding and
// the scenario's settle period has elapsed.
func (h *ChaosHarness) Invariants() []chaos.Invariant {
	c := h.c
	return []chaos.Invariant{
		{Name: "slot-conflict", Check: func(bool) error {
			if v := c.InvariantViolations(); v > h.baseSlot {
				n := v - h.baseSlot
				h.baseSlot = v
				return fmt.Errorf("%d new slot double-occupancies", n)
			}
			return nil
		}},
		{Name: "state-conflict", Check: func(bool) error {
			if v := c.TotalCubStats().Conflicts; v > h.baseState {
				n := v - h.baseState
				h.baseState = v
				return fmt.Errorf("%d new viewer-state conflicts", n)
			}
			return nil
		}},
		{Name: "double-service", Check: func(bool) error {
			h.pruneServes()
			if h.doubles > h.reported {
				n := h.doubles - h.reported
				h.reported = h.doubles
				return fmt.Errorf("%d double services (last: %s)", n, h.lastDouble)
			}
			return nil
		}},
		{Name: "mirror-conservation", Check: func(quiet bool) error {
			if !quiet {
				return nil
			}
			for i, cub := range c.Cubs {
				if cub.FailedDisks() == 0 {
					if ml := c.MirrorLoadFor(i); ml != 0 {
						return fmt.Errorf("%d mirror entries cover healthy cub %d at rest", ml, i)
					}
				}
			}
			return nil
		}},
		{Name: "convergence", Check: func(quiet bool) error {
			if !quiet {
				return nil
			}
			for i, cub := range c.Cubs {
				if n := cub.BelievedDead(); n != 0 {
					return fmt.Errorf("cub %d still believes %d peers dead at rest", i, n)
				}
			}
			return nil
		}},
	}
}

// ChaosOutcome is the result of one scenario run: the runner's report
// plus the cluster's delivery and protocol-counter deltas over the run.
type ChaosOutcome struct {
	Report *chaos.Report

	// Viewer delivery deltas across the run.
	BlocksOK     int64
	BlocksLost   int64
	MirrorBlocks int64

	// Protocol counter deltas across the run.
	DeathsRefuted  int64
	MirrorsRetired int64
	Rejoins        int64
	StartsDup      int64
	StatesDup      int64

	// Converged is true when the cluster returned to a clean steady
	// state (no death beliefs, mirror load drained) after the last
	// scheduled step; Recovery is how long that took, at invariant-tick
	// granularity.
	Converged bool
	Recovery  time.Duration

	// Flight holds the failure flight recorder's dumps captured during
	// the run — one causal chain plus event window per oracle trigger.
	// Empty unless EnableFlightRecorder was called before the run.
	Flight []FlightDump
}

// RunChaos drives this cluster through one scenario under the standard
// invariant set. The cluster keeps running streams throughout; ramp load
// before calling. Recovery is measured from the scenario's last step
// (normally the final heal) to the first tick at which the system has
// converged.
//
// When the scenario leaves Settle zero, RunChaos derives it from this
// cluster's protocol timings rather than chaos.DefaultSettle: a covering
// cub that never believed the victim dead has no death to refute, so its
// mirror pieces drain only by being served — the last one was created
// just before refutation from a state up to MaxVStateLead (plus a few
// block plays of mirror-creation walk-back) ahead of the clock. The
// quiet-state invariants must not engage before that horizon passes.
func (c *Cluster) RunChaos(sc chaos.Scenario) (*ChaosOutcome, error) {
	if sc.Settle == 0 {
		sc.Settle = c.Cfg.DeadmanTimeout + c.Cfg.MaxVStateLead + 5*c.Cfg.Sched.BlockPlay
	}
	h := NewChaosHarness(c)
	defer h.Close()
	r, err := chaos.NewRunner(chaosSystem{c}, sc, h.Invariants())
	if err != nil {
		return nil, err
	}
	if fr := c.flight; fr != nil {
		// Dump causal context the moment an invariant fires, while the
		// implicated chains are still in the bounded buffers.
		r.OnViolation = func(v chaos.Violation) { fr.violation(v.Invariant, v.Err) }
	}

	var lastStep time.Duration
	for _, st := range sc.Steps {
		if st.At > lastStep {
			lastStep = st.At
		}
	}
	healAt := c.Now().Add(lastStep)
	conv := sim.Time(-1)
	r.OnTick = func(now sim.Time, quiet bool) {
		if conv < 0 && now >= healAt && h.Converged() {
			conv = now
		}
	}

	ok0, lost0, mir0 := c.ViewerTotals()
	cs0 := c.TotalCubStats()
	rep, err := r.Run()
	if err != nil {
		return nil, err
	}
	ok1, lost1, mir1 := c.ViewerTotals()
	cs1 := c.TotalCubStats()

	out := &ChaosOutcome{
		Report:         rep,
		BlocksOK:       ok1 - ok0,
		BlocksLost:     lost1 - lost0,
		MirrorBlocks:   mir1 - mir0,
		DeathsRefuted:  cs1.DeathsRefuted - cs0.DeathsRefuted,
		MirrorsRetired: cs1.MirrorsRetired - cs0.MirrorsRetired,
		Rejoins:        cs1.Rejoins - cs0.Rejoins,
		StartsDup:      cs1.StartsDup - cs0.StartsDup,
		StatesDup:      cs1.StatesDup - cs0.StatesDup,
		Converged:      conv >= 0,
	}
	if out.Converged {
		out.Recovery = conv.Sub(healAt)
	}
	if fr := c.flight; fr != nil {
		out.Flight = fr.Dumps()
	}
	return out, nil
}

// PartitionScenario cuts the victim cub's links to its next width ring
// successors — its deadman monitors and mirror neighbours — for cut
// long, then heals them and runs tail of quiet time. With width 2 the
// victim loses both cubs that watch it: they declare it dead and build
// mirror load while it keeps serving, the canonical false-death
// split-brain the healing rule exists for.
func PartitionScenario(victim, width, numCubs int, cut, tail time.Duration, seed int64) chaos.Scenario {
	const lead = 2 * time.Second
	var steps []chaos.Step
	for k := 1; k <= width; k++ {
		peer := (victim + k) % numCubs
		steps = append(steps,
			chaos.Step{At: lead, Kind: chaos.CutLink, A: victim, B: peer},
			chaos.Step{At: lead + cut, Kind: chaos.HealLink, A: victim, B: peer},
		)
	}
	return chaos.Scenario{
		Name:     fmt.Sprintf("partition-%dx-%s", width, cut),
		Seed:     seed,
		Duration: lead + cut + tail,
		Steps:    steps,
	}
}

// ChaosPoint is one row of the partition-duration sweep.
type ChaosPoint struct {
	PartitionSec   float64
	Streams        int
	Converged      bool
	RecoverySec    float64 // last heal to convergence
	BlocksOK       int64
	BlocksLost     int64
	MirrorBlocks   int64
	DeathsRefuted  int64
	MirrorsRetired int64
	Rejoins        int64 // must stay 0: refutation heals without restart
	Violations     int
}

// RunChaosSweep measures split-brain healing across partition durations:
// for each cut length it builds a fresh cluster, ramps it to streams
// (half capacity when zero), cuts cub 5 off from both its successors for
// that long, heals, and records recovery time and delivery loss. The
// paper restarts a machine to recover from false death; the refutation
// path makes recovery a heartbeat interval instead, independent of how
// long the partition lasted.
func RunChaosSweep(o Options, streams int, cuts []time.Duration) ([]ChaosPoint, error) {
	o.ClientDropProb = 0
	out := make([]ChaosPoint, len(cuts))
	err := forEachPoint(len(cuts), func(i int) error {
		c, err := New(o)
		if err != nil {
			return err
		}
		target := streams
		if target <= 0 || target > c.Capacity() {
			target = c.Capacity() / 2
		}
		if err := c.RampTo(target); err != nil {
			return err
		}
		c.RunFor(10 * time.Second)

		// Cut the victim off from every cub that holds its mirror pieces —
		// the next Decluster ring successors. They all monitor its
		// heartbeats, so on heal every piece holder refutes and retires
		// immediately instead of draining residual entries by serving them.
		const victim = 5
		width := 2
		if o.Decluster > width {
			width = o.Decluster
		}
		sc := PartitionScenario(victim, width, len(c.Cubs), cuts[i], 30*time.Second, o.Seed)
		res, err := c.RunChaos(sc)
		if err != nil {
			return err
		}
		out[i] = ChaosPoint{
			PartitionSec:   cuts[i].Seconds(),
			Streams:        c.Active(),
			Converged:      res.Converged,
			RecoverySec:    res.Recovery.Seconds(),
			BlocksOK:       res.BlocksOK,
			BlocksLost:     res.BlocksLost,
			MirrorBlocks:   res.MirrorBlocks,
			DeathsRefuted:  res.DeathsRefuted,
			MirrorsRetired: res.MirrorsRetired,
			Rejoins:        res.Rejoins,
			Violations:     len(res.Report.Violations),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
