package tiger

import (
	"fmt"
	"runtime"
	"time"

	"tiger/internal/disk"
)

// ScaleCapacityPoint is one cluster size in the warehouse-scale sweep:
// measured capacity and loss at rated load, the Viennot-style resource
// bounds the rated capacity is compared against, and the simulator-cost
// budgets (ns/event, allocs/event, heap/cub) that pin the O(window)
// claim at that scale.
type ScaleCapacityPoint struct {
	Cubs   int
	Disks  int
	Shards int // simulation shards used for this point (1 = serial)

	// Capacity versus the theoretical bounds. Rated is Tiger's planned
	// schedule capacity, which reserves disk bandwidth for declustered
	// mirror reads. BoundDisk is the same disks with no failover
	// reservation; BoundNet is the aggregate NIC bandwidth divided by
	// the stream rate. Bound = min(BoundDisk, BoundNet) is the
	// resource-capacity upper bound in the style of Viennot et al.:
	// no distribution scheme can serve more streams than the raw
	// bandwidth supports. CapacityFrac = Rated/Bound is the fraction of
	// that bound Tiger's mirrored schedule promises — the price of
	// single-fault tolerance.
	Rated        int
	BoundDisk    int
	BoundNet     int
	Bound        int
	CapacityFrac float64

	// Service quality over the measured hold at rated load.
	Achieved     int   // streams active at the end of the hold
	BlocksOK     int64 // on-time block deliveries during the hold
	BlocksLost   int64 // late or missing blocks during the hold
	ServerMisses int64 // server-side deadline misses during the hold

	// Simulator-cost budgets over the measured hold.
	Events          uint64  // simulation events executed
	NsPerEvent      float64 // wall nanoseconds per event
	AllocsPerEvent  float64 // heap allocations per event
	HeapBytesPerCub uint64  // live heap per cub after the hold (GC'd)
	MaxViewEntries  int     // largest per-cub view — the O(window) invariant
	WallSeconds     float64 // wall-clock time for settle+hold
}

// scaleShards picks the shard count for a cluster size: serial for
// small clusters (where coordinator windows cost more than they save),
// growing with size up to eight shards. A pure function of the cub
// count so the committed artifact does not depend on the host machine;
// worker count never changes results (byte-identical guarantee).
func scaleShards(cubs int) int {
	s := cubs / 32
	if s < 1 {
		s = 1
	}
	if s > 8 {
		s = 8
	}
	return s
}

// RunScaleCapacity sweeps cluster sizes, running each at its full rated
// capacity and measuring loss and simulator cost over a hold window.
// Points run sequentially (one large cluster wants the whole machine;
// the parallelism is inside each point, via sharding). settle is run
// after the ramp before measurement begins; hold is the measured
// window.
func RunScaleCapacity(o Options, cubCounts []int, settle, hold time.Duration) ([]ScaleCapacityPoint, error) {
	pts := make([]ScaleCapacityPoint, 0, len(cubCounts))
	for _, n := range cubCounts {
		p, err := runScalePoint(o, n, settle, hold)
		if err != nil {
			return pts, fmt.Errorf("scale point %d cubs: %w", n, err)
		}
		pts = append(pts, p)
	}
	return pts, nil
}

func runScalePoint(o Options, cubs int, settle, hold time.Duration) (ScaleCapacityPoint, error) {
	oo := o
	oo.Cubs = cubs
	disks := cubs * oo.DisksPerCub
	// Spread file start disks across the whole array and kill the two
	// stochastic loss sources that are not Tiger's fault: client-side
	// drops and ramp stagger (we want the steady state, not the ramp).
	if oo.NumFiles < disks {
		oo.NumFiles = disks
	}
	oo.ClientDropProb = 0
	oo.RampSpacing = 0
	// Likewise disable drive blips (the ~2e-6 slow-outlier tail that
	// reproduces the paper's §5 late blocks). They are a fault-model
	// feature exercised by the failure experiments; here they would add
	// an O(reads) noise floor of misses unrelated to scale, hiding the
	// systematic losses (backlog, late state) this sweep gates on.
	oo.DiskParams.BlipProb = 0
	oo.Shards = scaleShards(cubs)

	c, err := New(oo)
	if err != nil {
		return ScaleCapacityPoint{}, err
	}
	p := ScaleCapacityPoint{
		Cubs:   cubs,
		Disks:  disks,
		Shards: c.Shards(),
		Rated:  c.Capacity(),
	}
	// Resource bounds: the same hardware with no failover reservation.
	unmirrored := disk.PlanCapacity(oo.DiskParams, disks, oo.BlockSize, oo.BlockPlay, 0)
	p.BoundDisk = unmirrored.Streams
	p.BoundNet = int(float64(cubs) * oo.NetParams.NICRate * 8 / float64(oo.StreamBitrate))
	p.Bound = p.BoundDisk
	if p.BoundNet < p.Bound {
		p.Bound = p.BoundNet
	}
	if p.Bound > 0 {
		p.CapacityFrac = float64(p.Rated) / float64(p.Bound)
	}

	if err := c.RampTo(p.Rated); err != nil {
		return p, err
	}
	c.RunFor(settle)

	ok0, lost0, _ := c.ViewerTotals()
	miss0 := c.TotalCubStats().ServerMisses
	ev0 := c.EventsProcessed()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	w0 := time.Now()

	c.RunFor(hold)

	wall := time.Since(w0)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	ok1, lost1, _ := c.ViewerTotals()
	p.BlocksOK = ok1 - ok0
	p.BlocksLost = lost1 - lost0
	p.ServerMisses = c.TotalCubStats().ServerMisses - miss0
	p.Achieved = c.Active()
	p.Events = c.EventsProcessed() - ev0
	if p.Events > 0 {
		p.NsPerEvent = float64(wall.Nanoseconds()) / float64(p.Events)
		p.AllocsPerEvent = float64(m1.Mallocs-m0.Mallocs) / float64(p.Events)
	}
	p.MaxViewEntries = c.MaxViewSize()
	p.WallSeconds = wall.Seconds()

	// Memory footprint: live heap per cub with garbage collected. The
	// whole process is attributed to the cubs — viewers, controller and
	// harness included — so this is a conservative per-node figure.
	runtime.GC()
	var mg runtime.MemStats
	runtime.ReadMemStats(&mg)
	p.HeapBytesPerCub = mg.HeapAlloc / uint64(cubs)
	// The cluster must stay reachable through the heap measurement, or
	// the GC above collects the very footprint being measured.
	runtime.KeepAlive(c)
	return p, nil
}
