package tiger

import (
	"fmt"
	"io"

	"tiger/internal/core"
	"tiger/internal/msg"
	"tiger/internal/sim"
	"tiger/internal/trace"
)

// EnableTrace attaches a bounded protocol event log retaining the most
// recent `capacity` events (inserts, serves, misses, hedges,
// quarantines, restripe moves and phase flips) across all cubs. Call
// once, before starting load; returns the ring for inspection. Useful
// with Cub.DumpView when investigating a run. The ring's volume and
// eviction counters join the metrics registry, so an exported snapshot
// records whether the trace window was exceeded. The ring is a hook
// layer: it composes with a chaos harness and the flight recorder
// rather than displacing them.
func (c *Cluster) EnableTrace(capacity int) *trace.Ring {
	ring := trace.NewRing(capacity)
	c.ring = ring
	c.reg.CounterFunc("tiger_trace_events_total",
		"Protocol trace events recorded into the ring.",
		nil, func() float64 { return float64(ring.Total()) })
	c.reg.CounterFunc("tiger_trace_dropped_total",
		"Protocol trace events evicted from the bounded ring.",
		nil, func() float64 { return float64(ring.Dropped()) })
	c.ringHooks = core.Hooks{
		OnInsert: func(cubID msg.NodeID, slot int32, inst msg.InstanceID, due sim.Time) {
			ring.Add(trace.Event{
				At: c.Now(), Node: cubID, Kind: trace.Insert,
				Slot: slot, Instance: inst,
			})
		},
		OnServe: func(cubID msg.NodeID, vs msg.ViewerState) {
			ring.Add(trace.Event{
				At: c.Now(), Node: cubID, Kind: trace.Serve,
				Slot: vs.Slot, Instance: vs.Instance, Block: vs.Block,
				Mirror: vs.Mirror,
			})
		},
		OnMiss: func(cubID msg.NodeID, vs msg.ViewerState) {
			ring.Add(trace.Event{
				At: c.Now(), Node: cubID, Kind: trace.Miss,
				Slot: vs.Slot, Instance: vs.Instance, Block: vs.Block,
				Mirror: vs.Mirror,
			})
		},
		OnHedge: func(cubID msg.NodeID, vs msg.ViewerState) {
			ring.Add(trace.Event{
				At: c.Now(), Node: cubID, Kind: trace.Hedge,
				Slot: vs.Slot, Instance: vs.Instance, Block: vs.Block,
			})
		},
		OnQuarantine: func(cubID msg.NodeID, disk int32) {
			ring.Add(trace.Event{
				At: c.Now(), Node: cubID, Kind: trace.Quarantine,
				Slot: disk, // slot field carries the native disk key
			})
		},
		OnMoveCommit: func(cubID msg.NodeID, seq int64) {
			ring.Add(trace.Event{
				At: c.Now(), Node: cubID, Kind: trace.MoveCommit,
				Slot: int32(seq), // slot field carries the move sequence
			})
		},
		OnMoveNack: func(cubID msg.NodeID, seq int64, reason uint8) {
			ring.Add(trace.Event{
				At: c.Now(), Node: cubID, Kind: trace.MoveNack,
				Slot: int32(seq), Block: int32(reason),
			})
		},
		OnPark: func(cubID msg.NodeID, viewer msg.ViewerID, inst msg.InstanceID, slot int32) {
			ring.Add(trace.Event{
				At: c.Now(), Node: cubID, Kind: trace.Park,
				Slot: slot, Instance: inst,
			})
		},
		OnResume: func(cubID msg.NodeID, viewer msg.ViewerID, oldInst, newInst msg.InstanceID) {
			ring.Add(trace.Event{
				At: c.Now(), Node: cubID, Kind: trace.Resume,
				Slot: -1, Instance: newInst,
			})
		},
		OnUnservable: func(cubID msg.NodeID, disks int32) {
			ring.Add(trace.Event{
				At: c.Now(), Node: cubID, Kind: trace.Unservable,
				Slot: disks, // slot field carries the new unservable count
			})
		},
	}
	c.publishHooks()
	return ring
}

// ExportEvents streams the protocol trace as JSONL, one event per line,
// oldest first. EnableTrace must have been called.
func (c *Cluster) ExportEvents(w io.Writer) error {
	if c.ring == nil {
		return fmt.Errorf("tiger: ExportEvents requires EnableTrace")
	}
	return c.ring.WriteJSONL(w)
}

// ExportMetrics streams a snapshot of every registry series as JSONL,
// the machine-readable companion to Registry().WritePrometheus.
func (c *Cluster) ExportMetrics(w io.Writer) error {
	return c.reg.WriteJSONL(w)
}
