package tiger

import (
	"tiger/internal/core"
	"tiger/internal/msg"
	"tiger/internal/sim"
	"tiger/internal/trace"
)

// EnableTrace attaches a bounded protocol event log retaining the most
// recent `capacity` events (inserts, serves, misses) across all cubs.
// Call before starting load; returns the ring for inspection. Useful
// with Cub.DumpView when investigating a run.
func (c *Cluster) EnableTrace(capacity int) *trace.Ring {
	ring := trace.NewRing(capacity)
	for _, cub := range c.Cubs {
		cub.SetHooks(core.Hooks{
			OnInsert: func(cubID msg.NodeID, slot int32, inst msg.InstanceID, due sim.Time) {
				ring.Add(trace.Event{
					At: c.Now(), Node: cubID, Kind: trace.Insert,
					Slot: slot, Instance: inst,
				})
				c.onInsertOracle(cubID, slot, inst, due)
			},
			OnServe: func(cubID msg.NodeID, vs msg.ViewerState) {
				ring.Add(trace.Event{
					At: c.Now(), Node: cubID, Kind: trace.Serve,
					Slot: vs.Slot, Instance: vs.Instance, Block: vs.Block,
					Mirror: vs.Mirror,
				})
			},
			OnMiss: func(cubID msg.NodeID, vs msg.ViewerState) {
				ring.Add(trace.Event{
					At: c.Now(), Node: cubID, Kind: trace.Miss,
					Slot: vs.Slot, Instance: vs.Instance, Block: vs.Block,
					Mirror: vs.Mirror,
				})
			},
		})
	}
	return ring
}
